//! seal-lint: workspace-native static analysis for sealdb.
//!
//! Enforces the determinism and recovery-safety invariants the benchmark
//! artifacts depend on — no wall clock or ambient randomness in simulated
//! code, ordered iteration wherever bytes are exported, no panics in
//! crash-recovery paths — with zero external dependencies so the
//! workspace builds offline. See `DESIGN.md` §11 for the rule catalogue.

/// Rule scoping, path matching and the justified allowlist.
pub mod config;
/// Hand-rolled Rust token lexer (no external parser crates).
pub mod lexer;
/// The rule catalogue and per-file checking engine.
pub mod rules;

use config::{default_allowlist, default_scope, path_matches, AllowEntry};
use rules::{Finding, Rule};
use std::path::{Path, PathBuf};

/// How a lint run is scoped. The default (`Options::workspace()`) applies
/// the per-rule scope table and the allowlist; fixture tests use
/// `Options::everything()` to run every rule on every file with no
/// exemptions.
#[derive(Clone, Debug)]
pub struct Options {
    /// Ignore the scope table: run every rule on every file.
    pub all_rules_everywhere: bool,
    /// Apply the allowlist from [`config::default_allowlist`].
    pub use_allowlist: bool,
}

impl Options {
    /// Production scoping: per-rule scopes plus the allowlist.
    pub fn workspace() -> Options {
        Options {
            all_rules_everywhere: false,
            use_allowlist: true,
        }
    }

    /// Fixture scoping: all rules, no exemptions.
    pub fn everything() -> Options {
        Options {
            all_rules_everywhere: true,
            use_allowlist: false,
        }
    }
}

/// Directories never descended into: build output, VCS state, and the
/// lint fixtures themselves (which are known-bad on purpose).
const SKIP_DIRS: [&str; 4] = ["target", ".git", "fixtures", "related"];

/// Lints every `.rs` file under `root`, returning findings sorted by
/// (path, line, rule, message). Paths in findings are `/`-separated and
/// relative to `root`.
pub fn lint_root(root: &Path, opts: &Options) -> std::io::Result<Vec<Finding>> {
    let mut files = Vec::new();
    collect_rs_files(root, root, &mut files)?;
    files.sort();
    let allowlist = if opts.use_allowlist {
        default_allowlist()
    } else {
        Vec::new()
    };
    let mut findings = Vec::new();
    for rel in &files {
        let applicable = applicable_rules(rel, opts, &allowlist);
        if applicable.is_empty() {
            continue;
        }
        let src = std::fs::read_to_string(root.join(rel))?;
        findings.extend(rules::check_file(rel, &src, &applicable));
    }
    findings.sort();
    Ok(findings)
}

/// Rules that apply to the file at workspace-relative path `rel`.
fn applicable_rules(rel: &str, opts: &Options, allowlist: &[AllowEntry]) -> Vec<Rule> {
    Rule::ALL
        .iter()
        .copied()
        .filter(|&rule| {
            let in_scope = opts.all_rules_everywhere
                || default_scope(rule).iter().any(|pat| path_matches(pat, rel));
            let allowed = allowlist
                .iter()
                .any(|e| e.rule == rule && path_matches(e.pattern, rel));
            in_scope && !allowed
        })
        .collect()
}

fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<String>) -> std::io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        if path.is_dir() {
            if SKIP_DIRS.contains(&name) || name.starts_with('.') {
                continue;
            }
            collect_rs_files(root, &path, out)?;
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                let rel = rel
                    .components()
                    .map(|c| c.as_os_str().to_string_lossy())
                    .collect::<Vec<_>>()
                    .join("/");
                out.push(rel);
            }
        }
    }
    Ok(())
}

/// Renders findings one per line in the stable `path:line: rule: message`
/// format used by the golden fixture file.
pub fn render(findings: &[Finding]) -> String {
    let mut out = String::new();
    for f in findings {
        out.push_str(&f.to_string());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn applicable_rules_respect_scope_and_allowlist() {
        let opts = Options::workspace();
        let allow = default_allowlist();
        // timing.rs: wall clock allowed, ambient randomness still banned.
        let rules = applicable_rules("crates/bench/src/timing.rs", &opts, &allow);
        assert!(!rules.contains(&Rule::NoWallClock));
        assert!(rules.contains(&Rule::NoAmbientRandomness));
        // disk.rs: ordered-iteration rule in force.
        let rules = applicable_rules("crates/smr-sim/src/disk.rs", &opts, &allow);
        assert!(rules.contains(&Rule::NoUnorderedIteration));
        assert!(rules.contains(&Rule::NoWallClock));
        // wal.rs: recovery rules in force.
        let rules = applicable_rules("crates/lsm-core/src/wal.rs", &opts, &allow);
        assert!(rules.contains(&Rule::NoUnwrapInRecovery));
        assert!(rules.contains(&Rule::ErrorContext));
    }

    #[test]
    fn everything_mode_ignores_scope_and_allowlist() {
        let opts = Options::everything();
        let rules = applicable_rules("crates/bench/src/timing.rs", &opts, &[]);
        assert_eq!(rules.len(), Rule::ALL.len());
    }
}
