//! Fixture: repair and salvage of damaged storage without a dominating
//! fence. Expected findings: fence-before-repair (twice).

/// Rebuilds a damaged file before fencing the extent that damaged it:
/// the allocator can hand the bad region to the rebuilt file.
pub fn repair_without_fence(db: &mut Db, level: usize, file: u64) {
    let entries = db.read_survivors(level, file);
    db.rebuild_file(level, file, entries);
    db.quarantine_extent(file);
}

/// Fences on only one branch: the non-urgent path salvages an
/// unfenced segment.
pub fn fence_only_sometimes(db: &mut Db, seg: u64, urgent: bool) {
    if urgent {
        db.quarantine_extent(seg);
    }
    db.salvage_prefix(seg);
}
