//! Fixture: value-log violations. The log's segment directory feeds
//! the BENCH_pr8 artifact and its recovery path (checkpoint decode,
//! torn-tail scan) runs on every reopen, so unordered iteration breaks
//! byte-identical replays and a panic or context-free corruption error
//! turns a recoverable torn tail into an outage.

/// Recovers a segment directory by unwrapping the checkpoint decode and
/// raising a corruption error that never says which segment or offset
/// held the bad bytes.
pub fn recover_segments(blob: Option<&[u8]>) -> Result<u64, String> {
    let bytes = blob.unwrap();
    let head: [u8; 8] = bytes[..8].try_into().expect("checkpoint header");
    if head[0] != 1 {
        return Err(corruption("corrupt value-log checkpoint"));
    }
    Ok(u64::from_le_bytes(head))
}

/// Sums per-segment dead bytes in HashMap order, so the GC victim the
/// caller derives from the walk differs run to run.
pub fn dead_total(dead: &std::collections::HashMap<u64, u64>) -> u64 {
    let mut total = 0;
    for (_, bytes) in dead.iter() {
        total += bytes;
    }
    total
}
