//! Fixture: write acknowledgements that outrun durability.
//! Expected findings: sync-before-ack (twice).

/// Acks a client write while its bytes may still sit in the WAL buffer.
pub fn ack_without_sync(db: &mut Db) {
    db.stage_write(1);
    db.ack_write(1);
}

/// Syncs on only one branch, so the ack is not dominated: the fast
/// path acknowledges bytes the drive has never seen.
pub fn ack_sync_one_branch(db: &mut Db, fast: bool) {
    db.stage_write(2);
    if !fast {
        db.sync_wal();
    }
    db.ack_write(2);
}
