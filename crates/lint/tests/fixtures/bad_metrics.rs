//! Fixture: observability violations.

/// Registers metrics with a bad name and an undeclared layer.
pub fn emit(obs: &mut Obs) {
    obs.counter_add(ObsLayer::Device, "CamelCaseName", 1);
    obs.gauge_set(UNDECLARED, "fine_name", 2);
    obs.latency(ObsLayer::Store, "get_latency_ns", 3);
}

pub struct Undocumented;
