//! Fixture: cluster-router violations. Shard routing, the serving
//! schedule, and migration move order feed the BENCH_pr7 artifact
//! directly, so ambient randomness or unordered iteration here breaks
//! byte-identical same-seed replays and non-deterministic placement.

/// Routes a key by hashing with the process-random default hasher, so
/// the owning shard differs run to run.
pub fn route(key: &[u8], shards: usize) -> usize {
    use std::hash::{BuildHasher, Hasher};
    let mut h = std::collections::hash_map::RandomState::new().build_hasher();
    h.write(key);
    (h.finish() as usize) % shards
}

/// Walks per-shard queues in HashMap order, so the serving schedule —
/// and every latency percentile derived from it — varies across runs.
pub fn drain(queues: &std::collections::HashMap<usize, Vec<u64>>) -> Vec<u64> {
    let mut order = Vec::new();
    for (&shard, _) in queues.iter() {
        order.push(shard as u64);
    }
    order
}

#[cfg(test)]
mod tests {
    // Test code is exempt: none of these are findings.
    #[test]
    fn hash_maps_are_fine_here() {
        let mut m = std::collections::HashMap::new();
        m.insert(0usize, vec![1u64]);
        assert_eq!(m.len(), 1);
    }
}
