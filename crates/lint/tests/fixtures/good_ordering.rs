//! Fixture: the dominating patterns each ordering rule accepts. This
//! file must produce zero findings — it exercises every happy path the
//! rules must not flag (non-`pub` functions keep `pub-item-docs` out
//! of the picture for locals).

/// Syncs before acking, unconditionally.
pub fn ack_after_sync(db: &mut Db) {
    db.stage_write(7);
    db.sync_wal();
    db.ack_write(7);
}

/// Syncs on every branch: both paths dominate the ack.
pub fn ack_after_branchy_sync(db: &mut Db, fast: bool) {
    if fast {
        db.sync_wal();
    } else {
        db.sync_all();
    }
    db.ack_write(8);
}

/// Commits the segment directory (conditionally, exactly as the real
/// store does) before any pointer reaches the WAL.
pub fn checkpoint_then_pointer(db: &mut Db, vlog: &mut Log, key: &[u8], value: &[u8]) {
    let ptr = vlog.append(key, value);
    let mut batch = Batch::new();
    batch.put(key, &encode_pointer(ptr));
    if vlog.take_dirty() {
        db.commit_aux_state(vlog.checkpoint());
    }
    db.write(batch);
}

/// Plain writes with no pointers never need a checkpoint.
pub fn plain_write(db: &mut Db, batch: Batch) {
    db.write(batch);
}

fn fence_all(db: &mut Db, seg: u64) {
    db.quarantine_extent(seg);
}

/// The fence dominates the repair through a local helper: the
/// call-graph summary layer carries `Fence` across the call.
pub fn fence_then_repair(db: &mut Db, seg: u64) {
    fence_all(db, seg);
    let entries = db.salvage_prefix(seg);
    db.rebuild_file(0, seg, entries);
}

/// Fencing each damaged extent in a loop counts as dominating the
/// repair that follows (loop-optimistic must semantics).
pub fn fence_loop_then_repair(db: &mut Db, bad: &[u64]) {
    for ext in bad.iter() {
        db.quarantine_extent(ext);
    }
    db.rebuild_file(0, 0, Vec::new());
}

/// Fixups made durable before the victim's bytes are freed.
pub fn durable_then_recycle(db: &mut Db, vlog: &mut Log, victim: u64, fixups: Batch) {
    db.write_unaccounted(fixups);
    db.sync_wal();
    vlog.retire_segment(victim);
}

/// Drop impls may do any amount of in-memory cleanup.
impl Drop for Gauge {
    fn drop(&mut self) {
        self.samples.truncate(0);
    }
}
