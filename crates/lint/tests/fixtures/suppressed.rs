//! Fixture: every violation here carries a suppression comment, so this
//! file must contribute zero findings.

/// Wall-clock progress reporting, explicitly waived.
pub fn waived() -> u64 {
    // seal-lint: allow(no-wall-clock)
    let t = Instant::now();
    let s = SystemTime::now(); // seal-lint: allow(no-wall-clock)
    // seal-lint: allow(no-unordered-iteration)
    let m: HashMap<u64, u64> = HashMap::new();
    // seal-lint: allow(no-unwrap-in-recovery, error-context)
    let v = m.get(&0).unwrap();
    drop((t, s));
    *v
}
