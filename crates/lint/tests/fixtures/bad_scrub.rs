//! Fixture: scrub/repair-path violations. The scrub module walks live
//! tables and rebuilds damaged ones; like crash recovery, it must
//! degrade to errors instead of panicking, and its corruption errors
//! must say where the bad bytes live.

/// Verifies one table during a scrub pass, panicking where it should
/// report a verdict.
pub fn scan_table(blocks: &[Vec<u8>]) -> Result<(), String> {
    let footer = blocks.last().unwrap();
    let head = blocks.first().expect("table has a first block");
    if footer.len() != head.len() {
        return Err(corruption("scrub found a bad block"));
    }
    Ok(())
}

/// Rebuilds a damaged table; the bare literal hides which file died.
pub fn rebuild_table(ok: bool) -> Result<(), String> {
    if !ok {
        return Err(corruption("rebuild read failed"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    // Test code may unwrap freely: none of these are findings.
    #[test]
    fn unwraps_are_fine_here() {
        let v = [1u8].first().copied().unwrap();
        assert_eq!(v, 1);
    }
}
