//! Fixture: the PR 8 bug class — value-log pointers reach the WAL
//! before the segment-directory checkpoint commits.
//! Expected findings: checkpoint-before-pointer (twice).

/// Appends a diverted value and writes the pointer before committing
/// the directory: a crash between the two recovers a live pointer into
/// an orphaned segment.
pub fn pointer_before_checkpoint(db: &mut Db, vlog: &mut Log, key: &[u8], value: &[u8]) {
    let ptr = vlog.append(key, value);
    let mut batch = Batch::new();
    batch.put(key, &encode_pointer(ptr));
    db.write(batch);
    if vlog.take_dirty() {
        db.commit_aux_state(vlog.checkpoint());
    }
}

/// Never commits at all: every pointer in the batch dangles after any
/// crash that loses the in-memory segment directory.
pub fn pointer_with_no_checkpoint(db: &mut Db, vlog: &mut Log, key: &[u8], value: &[u8]) {
    let ptr = vlog.append(key, value);
    let mut batch = Batch::new();
    batch.put(key, &encode_pointer(ptr));
    db.write(batch);
}
