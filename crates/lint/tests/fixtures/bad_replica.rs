//! Fixture: replication-path violations. The cluster's failover and
//! shipping decisions feed the BENCH_pr6 artifact directly, so a host
//! clock read or unordered map iteration here breaks byte-identical
//! same-seed replays.

/// Measures a failover with the host clock instead of the simulated one.
pub fn measure_rto() -> u64 {
    let started = std::time::Instant::now();
    started.elapsed().as_nanos() as u64
}

/// Tracks per-replica ack state in a map whose iteration order varies
/// across runs, so the elected candidate can differ replay to replay.
pub fn elect(acks: &std::collections::HashMap<usize, u64>) -> Option<usize> {
    acks.iter().map(|(&node, _)| node).next()
}

#[cfg(test)]
mod tests {
    // Test code is exempt: none of these are findings.
    #[test]
    fn hash_maps_are_fine_here() {
        let mut m = std::collections::HashMap::new();
        m.insert(1usize, 2u64);
        assert_eq!(m.len(), 1);
    }
}
