//! Fixture: determinism violations. Never compiled — consumed as lexer
//! input by the golden test.

pub fn timing() -> u64 {
    let t = Instant::now();
    let s = SystemTime::now();
    drop((t, s));
    0
}

pub fn randomness() {
    let mut rng = thread_rng();
    let state = RandomState::new();
    let seeded = SmallRng::from_entropy();
    drop((rng, state, seeded));
}

pub fn collections() {
    let m: HashMap<u64, u64> = HashMap::new();
    let s: HashSet<u64> = HashSet::new();
    drop((m, s));
}
