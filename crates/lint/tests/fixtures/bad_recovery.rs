//! Fixture: recovery-safety violations.

/// Replays a log, panicking where it should degrade.
pub fn replay(bytes: &[u8]) -> Vec<u8> {
    let head = bytes.first().unwrap();
    let tail = bytes.last().expect("log has a tail");
    if *head != *tail {
        return corruption("bad record crc");
    }
    bytes.to_vec()
}

/// Accounts bytes with a truncating cast.
pub fn account(total: u64) -> u32 {
    total as u32
}

#[cfg(test)]
mod tests {
    // Test code may unwrap freely: none of these are findings.
    #[test]
    fn unwraps_are_fine_here() {
        let v = vec![1u8].first().copied().unwrap();
        assert_eq!(v, 1);
    }
}
