//! Fixture: durability work reachable from `Drop` impls, where
//! ordering at crash is undefined.
//! Expected findings: no-durability-in-drop (twice).

/// A drop impl that syncs the WAL directly.
impl Drop for Flusher {
    fn drop(&mut self) {
        self.db.sync_wal();
    }
}

/// Helper that hides the checkpoint commit one call deep.
fn hidden_commit(db: &mut Db) {
    db.commit_aux_state(Vec::new());
}

/// A drop that reaches durability transitively through the helper;
/// the call-graph summary layer must see through it.
impl Drop for Checkpointer {
    fn drop(&mut self) {
        hidden_commit(&mut self.db);
    }
}

/// A drop that only touches in-memory state is fine.
impl Drop for Counter {
    fn drop(&mut self) {
        self.stats.reset_counts();
    }
}
