//! Fixture: a GC victim recycled before its pointer fixups are
//! durable. Expected findings: recycle-after-fixups-durable.

/// Frees the victim's bytes while the fixups that redirect live keys
/// away from it are still buffered: a crash leaves recovered pointers
/// aimed at overwritten media. The sync arrives one line too late.
pub fn recycle_before_fixups_durable(db: &mut Db, vlog: &mut Log, victim: u64, fixups: Batch) {
    db.write_unaccounted(fixups);
    vlog.retire_segment(victim);
    db.sync_wal();
}
