//! Integration tests: golden diagnostics over the fixture tree,
//! suppression behaviour, CLI exit codes, and the self-clean guarantee
//! on the real workspace.

use seal_lint::{lint_root, render, Options};
use std::path::{Path, PathBuf};
use std::process::Command;

fn crate_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

fn fixtures_dir() -> PathBuf {
    crate_dir().join("tests/fixtures")
}

fn workspace_dir() -> PathBuf {
    crate_dir()
        .parent()
        .and_then(Path::parent)
        .expect("crates/lint sits two levels below the workspace root")
        .to_path_buf()
}

#[test]
fn fixtures_match_golden_diagnostics() {
    let findings = lint_root(&fixtures_dir(), &Options::everything()).unwrap();
    let rendered = render(&findings);
    let expected = std::fs::read_to_string(fixtures_dir().join("expected.txt")).unwrap();
    assert_eq!(
        rendered, expected,
        "fixture diagnostics drifted from tests/fixtures/expected.txt; \
         if the change is intentional, regenerate the golden file with \
         `cargo run -p seal-lint -- --root crates/lint/tests/fixtures --everything`"
    );
}

#[test]
fn every_rule_appears_in_fixture_findings() {
    let findings = lint_root(&fixtures_dir(), &Options::everything()).unwrap();
    for rule in seal_lint::rules::Rule::ALL {
        assert!(
            findings.iter().any(|f| f.rule == rule),
            "fixtures exercise no `{rule}` finding"
        );
    }
}

#[test]
fn suppression_comments_silence_findings() {
    let findings = lint_root(&fixtures_dir(), &Options::everything()).unwrap();
    let from_suppressed: Vec<_> = findings
        .iter()
        .filter(|f| f.path.starts_with("suppressed"))
        .collect();
    assert!(
        from_suppressed.is_empty(),
        "suppressed.rs leaked findings: {from_suppressed:?}"
    );
}

#[test]
fn fixture_runs_are_deterministic() {
    let a = render(&lint_root(&fixtures_dir(), &Options::everything()).unwrap());
    let b = render(&lint_root(&fixtures_dir(), &Options::everything()).unwrap());
    assert_eq!(a, b);
}

#[test]
fn real_workspace_is_clean() {
    let findings = lint_root(&workspace_dir(), &Options::workspace()).unwrap();
    assert!(
        findings.is_empty(),
        "the workspace must lint clean; found:\n{}",
        render(&findings)
    );
}

#[test]
fn good_ordering_fixture_is_clean() {
    let findings = lint_root(&fixtures_dir(), &Options::everything()).unwrap();
    let from_good: Vec<_> = findings
        .iter()
        .filter(|f| f.path.starts_with("good_ordering"))
        .collect();
    assert!(
        from_good.is_empty(),
        "good_ordering.rs must pass every ordering rule; found: {from_good:?}"
    );
}

#[test]
fn json_output_is_deterministic_and_well_formed() {
    let bin = env!("CARGO_BIN_EXE_seal-lint");
    let run = || {
        Command::new(bin)
            .args([
                "--root",
                fixtures_dir().to_str().unwrap(),
                "--everything",
                "--format",
                "json",
            ])
            .output()
            .unwrap()
    };
    let a = run();
    let b = run();
    assert_eq!(a.status.code(), Some(1), "findings still drive exit code");
    assert_eq!(a.stdout, b.stdout, "JSON output must be byte-stable");
    let text = String::from_utf8(a.stdout).unwrap();
    assert!(text.starts_with("{\"findings\":["), "JSON envelope");
    assert!(text.trim_end().ends_with('}'), "JSON envelope closes");
    assert!(
        text.contains("\"rule\":\"checkpoint-before-pointer\""),
        "ordering findings appear in JSON"
    );
    assert!(
        !text.contains('\u{0}'),
        "no raw control characters in output"
    );
}

#[test]
fn baseline_suppresses_and_flags_staleness() {
    let bin = env!("CARGO_BIN_EXE_seal-lint");
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("baseline-test");
    std::fs::create_dir_all(&dir).unwrap();

    // A baseline covering every fixture finding plus one stale entry.
    let findings = lint_root(&fixtures_dir(), &Options::everything()).unwrap();
    let mut lines: Vec<String> = findings
        .iter()
        .map(|f| format!("{}: {}: grandfathered fixture finding", f.path, f.rule))
        .collect();
    lines.sort();
    lines.dedup();
    lines.push("no_such_file.rs: no-wall-clock: stale on purpose".to_string());
    let baseline = dir.join("full.txt");
    std::fs::write(&baseline, lines.join("\n") + "\n").unwrap();

    let out = Command::new(bin)
        .args([
            "--root",
            fixtures_dir().to_str().unwrap(),
            "--everything",
            "--baseline",
            baseline.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "fully-baselined run must exit 0; stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(
        stderr.contains("stale baseline entry") && stderr.contains("no_such_file.rs"),
        "stale entries are reported on stderr; got: {stderr}"
    );

    // Entries without a justification are a hard configuration error.
    let bad = dir.join("bad.txt");
    std::fs::write(&bad, "good_ordering.rs: no-wall-clock:\n").unwrap();
    let out = Command::new(bin)
        .args([
            "--root",
            fixtures_dir().to_str().unwrap(),
            "--everything",
            "--baseline",
            bad.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert_eq!(
        out.status.code(),
        Some(2),
        "missing justification must be rejected with exit 2"
    );
}

#[test]
fn fixture_skip_is_scoped_to_the_lint_crate() {
    // Only `crates/lint/tests/fixtures` is exempt from linting; any other
    // directory that happens to be called `fixtures` must still be scanned.
    let root = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("fixtures-scope");
    let nested = root.join("crates/demo/src/fixtures");
    std::fs::create_dir_all(&nested).unwrap();
    std::fs::write(
        nested.join("clocky.rs"),
        "pub fn now() -> std::time::Instant { std::time::Instant::now() }\n",
    )
    .unwrap();
    let findings = lint_root(&root, &Options::everything()).unwrap();
    assert!(
        findings.iter().any(|f| f.path.contains("fixtures")),
        "a dir merely named `fixtures` outside crates/lint must be linted; \
         got: {findings:?}"
    );
}

#[test]
fn cli_exit_codes() {
    let bin = env!("CARGO_BIN_EXE_seal-lint");
    let clean = Command::new(bin)
        .args(["--root", workspace_dir().to_str().unwrap()])
        .output()
        .unwrap();
    assert!(clean.status.success(), "workspace run must exit 0");
    let dirty = Command::new(bin)
        .args(["--root", fixtures_dir().to_str().unwrap(), "--everything"])
        .output()
        .unwrap();
    assert_eq!(
        dirty.status.code(),
        Some(1),
        "fixture run must exit 1 (findings)"
    );
    let stdout = String::from_utf8(dirty.stdout).unwrap();
    assert!(stdout.contains("no-wall-clock"), "diagnostics on stdout");
}
