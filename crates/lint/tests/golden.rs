//! Integration tests: golden diagnostics over the fixture tree,
//! suppression behaviour, CLI exit codes, and the self-clean guarantee
//! on the real workspace.

use seal_lint::{lint_root, render, Options};
use std::path::{Path, PathBuf};
use std::process::Command;

fn crate_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

fn fixtures_dir() -> PathBuf {
    crate_dir().join("tests/fixtures")
}

fn workspace_dir() -> PathBuf {
    crate_dir()
        .parent()
        .and_then(Path::parent)
        .expect("crates/lint sits two levels below the workspace root")
        .to_path_buf()
}

#[test]
fn fixtures_match_golden_diagnostics() {
    let findings = lint_root(&fixtures_dir(), &Options::everything()).unwrap();
    let rendered = render(&findings);
    let expected = std::fs::read_to_string(fixtures_dir().join("expected.txt")).unwrap();
    assert_eq!(
        rendered, expected,
        "fixture diagnostics drifted from tests/fixtures/expected.txt; \
         if the change is intentional, regenerate the golden file with \
         `cargo run -p seal-lint -- --root crates/lint/tests/fixtures --everything`"
    );
}

#[test]
fn every_rule_appears_in_fixture_findings() {
    let findings = lint_root(&fixtures_dir(), &Options::everything()).unwrap();
    for rule in seal_lint::rules::Rule::ALL {
        assert!(
            findings.iter().any(|f| f.rule == rule),
            "fixtures exercise no `{rule}` finding"
        );
    }
}

#[test]
fn suppression_comments_silence_findings() {
    let findings = lint_root(&fixtures_dir(), &Options::everything()).unwrap();
    let from_suppressed: Vec<_> = findings
        .iter()
        .filter(|f| f.path.starts_with("suppressed"))
        .collect();
    assert!(
        from_suppressed.is_empty(),
        "suppressed.rs leaked findings: {from_suppressed:?}"
    );
}

#[test]
fn fixture_runs_are_deterministic() {
    let a = render(&lint_root(&fixtures_dir(), &Options::everything()).unwrap());
    let b = render(&lint_root(&fixtures_dir(), &Options::everything()).unwrap());
    assert_eq!(a, b);
}

#[test]
fn real_workspace_is_clean() {
    let findings = lint_root(&workspace_dir(), &Options::workspace()).unwrap();
    assert!(
        findings.is_empty(),
        "the workspace must lint clean; found:\n{}",
        render(&findings)
    );
}

#[test]
fn cli_exit_codes() {
    let bin = env!("CARGO_BIN_EXE_seal-lint");
    let clean = Command::new(bin)
        .args(["--root", workspace_dir().to_str().unwrap()])
        .output()
        .unwrap();
    assert!(clean.status.success(), "workspace run must exit 0");
    let dirty = Command::new(bin)
        .args(["--root", fixtures_dir().to_str().unwrap(), "--everything"])
        .output()
        .unwrap();
    assert_eq!(
        dirty.status.code(),
        Some(1),
        "fixture run must exit 1 (findings)"
    );
    let stdout = String::from_utf8(dirty.stdout).unwrap();
    assert!(stdout.contains("no-wall-clock"), "diagnostics on stdout");
}
