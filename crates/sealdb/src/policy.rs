//! The set-aware placement policy: the glue between the LSM engine's
//! compactions and the on-disk set regions.
//!
//! * **Flush** outputs become single-member regions appended/inserted by
//!   the allocator.
//! * **Compaction** outputs are written back-to-back into *one*
//!   allocation — the regenerated set — turning "multiple random accesses
//!   on scattered SSTables into a large sequential one" (§III-A).
//! * **Delete** marks members invalid; a region's space returns to the
//!   allocator only when the whole set fades (§III-C), and victim
//!   priority steers compactions toward sets with the most invalid
//!   members so fragments are recycled implicitly.

use crate::set::SetRegistry;
use lsm_core::filestore::FileStore;
use lsm_core::policy::{drain_alloc_events, GcConfig, GcReport};
use lsm_core::types::FileId;
use lsm_core::{PlacementPolicy, Result, SetStats};
use placement::Allocator;
use smr_sim::{Extent, IoKind, ObsEventKind, ObsLayer};

/// Set-based placement over any allocator (dynamic bands for SEALDB;
/// an Ext4-like allocator for the Fig. 14 "LevelDB + sets" ablation).
pub struct SetPolicy {
    alloc: Box<dyn Allocator>,
    registry: SetRegistry,
    /// Enables the §III-C victim-priority heuristic.
    priority_picking: bool,
    /// Pays a 4 KiB filesystem-journal write per region operation; used
    /// by the "LevelDB + sets" ablation, which still sits above Ext4.
    fs_journal: bool,
}

impl std::fmt::Debug for SetPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SetPolicy")
            .field("alloc", &self.alloc.name())
            .field("live_regions", &self.registry.live_count())
            .field("priority_picking", &self.priority_picking)
            .field("fs_journal", &self.fs_journal)
            .finish()
    }
}

impl SetPolicy {
    /// Creates a set policy over `alloc` with priority picking enabled.
    pub fn new(alloc: Box<dyn Allocator>) -> Self {
        SetPolicy {
            alloc,
            registry: SetRegistry::new(),
            priority_picking: true,
            fs_journal: false,
        }
    }

    /// Disables the victim-priority heuristic (ablation).
    pub fn without_priority_picking(mut self) -> Self {
        self.priority_picking = false;
        self
    }

    /// Enables per-operation filesystem metadata writes (the
    /// LevelDB-with-sets ablation runs above a filesystem).
    pub fn with_fs_journal(mut self) -> Self {
        self.fs_journal = true;
        self
    }

    fn journal(&self, fs: &mut FileStore) -> Result<()> {
        if self.fs_journal {
            use lsm_core::version::FSMETA_LOG_ID;
            if !fs.has_log(FSMETA_LOG_ID) {
                fs.create_log(FSMETA_LOG_ID)?;
            }
            // Circular journal: wrap before crowding out the WAL/manifest.
            if fs.log_len(FSMETA_LOG_ID)? > 4 << 20 {
                fs.delete_log(FSMETA_LOG_ID)?;
                fs.create_log(FSMETA_LOG_ID)?;
            }
            fs.log_append(FSMETA_LOG_ID, &[0u8; 4096], IoKind::Meta)?;
        }
        Ok(())
    }

    /// The set registry (inspection).
    pub fn registry(&self) -> &SetRegistry {
        &self.registry
    }
}

impl PlacementPolicy for SetPolicy {
    fn name(&self) -> &'static str {
        "sets"
    }

    fn place_flush(&mut self, fs: &mut FileStore, file: FileId, data: &[u8]) -> Result<u64> {
        let ext = self.alloc.allocate(data.len() as u64)?;
        drain_alloc_events(self.alloc.as_mut(), fs);
        fs.write_file_at(file, ext, data, IoKind::Flush)?;
        self.journal(fs)?;
        Ok(self.registry.register(ext, vec![file], false))
    }

    fn place_outputs(&mut self, fs: &mut FileStore, outputs: &[(FileId, Vec<u8>)]) -> Result<u64> {
        if outputs.is_empty() {
            return Ok(0);
        }
        let total: u64 = outputs.iter().map(|(_, d)| d.len() as u64).sum();
        // One allocation for the whole regenerated set; members are laid
        // out back-to-back so the set reads and writes sequentially.
        let region = self.alloc.allocate(total)?;
        drain_alloc_events(self.alloc.as_mut(), fs);
        let mut offset = region.offset;
        let mut members = Vec::with_capacity(outputs.len());
        for (file, data) in outputs {
            let ext = Extent::new(offset, data.len() as u64);
            fs.write_file_at(*file, ext, data, IoKind::CompactionWrite)?;
            offset += data.len() as u64;
            members.push(*file);
        }
        self.journal(fs)?;
        Ok(self.registry.register(region, members, true))
    }

    fn place_vlog_segment(
        &mut self,
        fs: &mut FileStore,
        file: FileId,
        size: u64,
    ) -> Result<Extent> {
        // A value-log segment is its own single-member region: one whole
        // dynamic band that returns to the allocator the moment the log
        // retires it, never merged into a compaction set.
        let ext = self
            .alloc
            .allocate(size + lsm_core::policy::vlog_append_slack(fs))?;
        drain_alloc_events(self.alloc.as_mut(), fs);
        fs.register_file(file, ext);
        self.registry.register(ext, vec![file], false);
        self.journal(fs)?;
        Ok(ext)
    }

    fn delete_file(&mut self, fs: &mut FileStore, file: FileId) -> Result<()> {
        // Invalidate the member's bytes; recycle the region only when it
        // has fully faded.
        fs.drop_file(file)?;
        if let Some(region_ext) = self.registry.invalidate_file(file) {
            self.alloc.free(region_ext);
            drain_alloc_events(self.alloc.as_mut(), fs);
        }
        self.journal(fs)
    }

    fn victim_priority(&self, overlapped: &[FileId]) -> u64 {
        if self.priority_picking {
            self.registry.priority_for(overlapped)
        } else {
            0
        }
    }

    fn quarantine_extent(&mut self, fs: &mut FileStore, ext: Extent) -> u64 {
        let fenced = self.alloc.quarantine(ext);
        drain_alloc_events(self.alloc.as_mut(), fs);
        fenced
    }

    fn allocator(&self) -> &dyn Allocator {
        self.alloc.as_ref()
    }

    fn rebuild(&mut self, live: &[(lsm_core::types::FileId, Extent)]) {
        let exts: Vec<Extent> = live.iter().map(|&(_, e)| e).collect();
        self.alloc.rebuild(&exts);
        // Set grouping does not survive a power cut: every survivor
        // restarts as a single-member region, so a later delete of the
        // file frees exactly the extent the allocator relearned above.
        self.registry = SetRegistry::new();
        for &(file, ext) in live {
            self.registry.register(ext, vec![file], false);
        }
    }

    fn set_stats(&self) -> Option<SetStats> {
        Some(self.registry.stats())
    }

    /// The paper's stated future work (SIV-C): "these small fragments are
    /// quite difficult to be leveraged, thus SEALDB needs alternative
    /// garbage collection policies as a supplement."
    ///
    /// Policy implemented here: while fragments (free regions below the
    /// threshold) exceed the target share of the used span, relocate the
    /// live set that directly follows the largest fragment — rewriting it
    /// at the frontier (or into a big hole) merges the fragment with the
    /// space the set vacates, which coalesces into a reusable region.
    fn collect_garbage(&mut self, fs: &mut FileStore, cfg: &GcConfig) -> Result<GcReport> {
        let threshold = if cfg.fragment_threshold > 0 {
            cfg.fragment_threshold
        } else {
            let avg = self.registry.stats().avg_set_bytes();
            if avg <= 0.0 {
                return Ok(GcReport::default()); // nothing to measure against
            }
            avg as u64
        };
        let fragment_bytes = |alloc: &dyn Allocator| -> u64 {
            alloc
                .free_regions()
                .iter()
                .filter(|e| e.len < threshold)
                .map(|e| e.len)
                .sum()
        };
        let mut report = GcReport {
            fragments_before: fragment_bytes(self.alloc.as_ref()),
            ..Default::default()
        };
        report.fragments_after = report.fragments_before;
        for _ in 0..cfg.max_moves {
            let span = self.alloc.high_water().max(1);
            if (report.fragments_after as f64) / (span as f64) <= cfg.target_fragment_ratio {
                break;
            }
            // Fragments largest-first; pick the first one with a live set
            // right after it (a fragment at the tail of the banded region
            // has nothing to relocate and coalesces on its own later).
            let mut fragments: Vec<Extent> = self
                .alloc
                .free_regions()
                .into_iter()
                .filter(|e| e.len < threshold)
                .collect();
            fragments.sort_by_key(|e| std::cmp::Reverse(e.len));
            let candidate = fragments.iter().find_map(|frag| {
                self.registry
                    .regions()
                    .filter(|(_, r)| {
                        r.ext.offset >= frag.end() && r.ext.offset - frag.end() <= 2 * threshold
                    })
                    .min_by_key(|(_, r)| r.ext.offset)
                    .map(|(id, _)| *id)
            });
            let Some(region_id) = candidate else {
                break;
            };
            let region = self.registry.take_region(region_id).expect("region exists");
            // Read live members (sequential: they are contiguous), then
            // rewrite them elsewhere as a fresh set.
            let mut live: Vec<(lsm_core::types::FileId, Vec<u8>, Extent)> = Vec::new();
            let mut members: Vec<lsm_core::types::FileId> = Vec::new();
            for &f in &region.members {
                if region.live.contains(&f) {
                    let old_ext = fs.file_extent(f)?;
                    live.push((f, fs.read_full(f, IoKind::Gc)?, old_ext));
                    members.push(f);
                }
            }
            let total: u64 = live.iter().map(|(_, d, _)| d.len() as u64).sum();
            if total > 0 {
                let new_region = self.alloc.allocate(total)?;
                drain_alloc_events(self.alloc.as_mut(), fs);
                let mut offset = new_region.offset;
                // Invalidate the old copies before the writes so the raw
                // SMR guard checks see the space as free.
                for (f, _, _old_ext) in &live {
                    fs.drop_file(*f)?;
                }
                for (f, data, _) in &live {
                    let ext = Extent::new(offset, data.len() as u64);
                    fs.write_file_at(*f, ext, data, IoKind::Gc)?;
                    offset += data.len() as u64;
                }
                self.registry
                    .register(new_region, members, region.from_compaction);
                report.moved_bytes += total;
            }
            self.alloc.free(region.ext);
            drain_alloc_events(self.alloc.as_mut(), fs);
            fs.disk_mut().obs_event(
                ObsLayer::Placement,
                ObsEventKind::GcRelocate,
                region.ext.offset,
                total,
            );
            report.relocated_sets += 1;
            report.fragments_after = fragment_bytes(self.alloc.as_ref());
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use placement::DynamicBandAlloc;
    use smr_sim::{Disk, Layout, TimeModel};

    const MB: u64 = 1 << 20;
    const SST: u64 = 4 * MB;

    fn store() -> FileStore {
        let cap = 1024 * MB;
        let disk = Disk::new(
            cap,
            Layout::RawHmSmr { guard_bytes: SST },
            TimeModel::smr_st5000as0011(cap),
        );
        FileStore::new(disk, 16 * MB)
    }

    fn policy(fs: &FileStore) -> SetPolicy {
        SetPolicy::new(Box::new(DynamicBandAlloc::new(
            fs.data_capacity(),
            SST,
            SST,
        )))
    }

    #[test]
    fn compaction_outputs_are_contiguous() {
        let mut fs = store();
        let mut p = policy(&fs);
        let outputs: Vec<(u64, Vec<u8>)> = (0..4)
            .map(|i| (20 + i, vec![i as u8; SST as usize]))
            .collect();
        let set = p.place_outputs(&mut fs, &outputs).unwrap();
        assert!(set > 0);
        // Members back-to-back on disk.
        for w in (20..24u64).collect::<Vec<_>>().windows(2) {
            let a = fs.file_extent(w[0]).unwrap();
            let b = fs.file_extent(w[1]).unwrap();
            assert_eq!(a.end(), b.offset);
        }
        // Readable with the right contents.
        assert_eq!(
            fs.read_full(22, IoKind::Get).unwrap(),
            vec![2u8; SST as usize]
        );
    }

    #[test]
    fn region_space_recycled_only_when_set_fades() {
        let mut fs = store();
        let mut p = policy(&fs);
        let outputs: Vec<(u64, Vec<u8>)> =
            (0..3).map(|i| (30 + i, vec![7u8; SST as usize])).collect();
        p.place_outputs(&mut fs, &outputs).unwrap();
        let allocated_before = p.allocator().allocated_bytes();
        p.delete_file(&mut fs, 30).unwrap();
        p.delete_file(&mut fs, 31).unwrap();
        // Region still allocated while one member lives.
        assert_eq!(p.allocator().allocated_bytes(), allocated_before);
        assert!(p.allocator().free_regions().is_empty());
        p.delete_file(&mut fs, 32).unwrap();
        assert_eq!(p.allocator().allocated_bytes(), 0);
        assert_eq!(p.allocator().free_regions().len(), 1);
    }

    #[test]
    fn victim_priority_tracks_invalid_members() {
        let mut fs = store();
        let mut p = policy(&fs);
        let a: Vec<(u64, Vec<u8>)> = (0..3).map(|i| (40 + i, vec![1u8; 1000])).collect();
        let b: Vec<(u64, Vec<u8>)> = (0..3).map(|i| (50 + i, vec![2u8; 1000])).collect();
        p.place_outputs(&mut fs, &a).unwrap();
        p.place_outputs(&mut fs, &b).unwrap();
        p.delete_file(&mut fs, 40).unwrap();
        p.delete_file(&mut fs, 41).unwrap();
        p.delete_file(&mut fs, 50).unwrap();
        // Region A is nearly faded (one live member): it contributes.
        assert_eq!(p.victim_priority(&[42]), 2);
        // Region B still has two live members: no priority yet.
        assert_eq!(p.victim_priority(&[51, 52]), 0);
        assert_eq!(p.victim_priority(&[42, 51]), 2);
        p.delete_file(&mut fs, 51).unwrap();
        assert_eq!(p.victim_priority(&[52]), 2);
        let no_prio = SetPolicy::new(Box::new(DynamicBandAlloc::new(MB, SST, SST)))
            .without_priority_picking();
        assert_eq!(no_prio.victim_priority(&[42]), 0);
    }

    #[test]
    fn flush_regions_count_as_sets() {
        let mut fs = store();
        let mut p = policy(&fs);
        p.place_flush(&mut fs, 60, &vec![9u8; 1000]).unwrap();
        let stats = p.set_stats().unwrap();
        assert_eq!(stats.sets_created, 1);
        assert_eq!(stats.compaction_sets, 0);
    }

    #[test]
    fn empty_outputs_no_set() {
        let mut fs = store();
        let mut p = policy(&fs);
        assert_eq!(p.place_outputs(&mut fs, &[]).unwrap(), 0);
    }
}

#[cfg(test)]
mod gc_tests {
    use super::*;
    use lsm_core::policy::GcConfig;
    use placement::DynamicBandAlloc;
    use smr_sim::{Disk, Layout, TimeModel};

    const MB: u64 = 1 << 20;
    const SST: u64 = MB;

    fn store() -> FileStore {
        let cap = 1024 * MB;
        let disk = Disk::new(
            cap,
            Layout::RawHmSmr { guard_bytes: SST },
            TimeModel::smr_st5000as0011(cap),
        );
        FileStore::new(disk, 16 * MB)
    }

    /// Builds a fragmented layout: small live sets alternating with
    /// faded ones whose holes are too small to reuse.
    fn fragmented(fs: &mut FileStore) -> SetPolicy {
        let mut p = SetPolicy::new(Box::new(DynamicBandAlloc::new(
            fs.data_capacity(),
            SST,
            SST,
        )));
        let mut id = 100u64;
        let mut doomed = Vec::new();
        for i in 0..20 {
            // A live 3-table set...
            let outputs: Vec<(u64, Vec<u8>)> = (0..3)
                .map(|j| (id + j, vec![i as u8; SST as usize]))
                .collect();
            p.place_outputs(fs, &outputs).unwrap();
            id += 3;
            // ...followed by a small set that will fade into a fragment
            // (1 table + guard = 2 MiB hole, below the 3 MiB average).
            let small: Vec<(u64, Vec<u8>)> = vec![(id, vec![0xEE; SST as usize])];
            p.place_outputs(fs, &small).unwrap();
            doomed.push(id);
            id += 1;
        }
        for d in doomed {
            p.delete_file(fs, d).unwrap();
        }
        p
    }

    #[test]
    fn gc_coalesces_fragments_and_preserves_data() {
        let mut fs = store();
        let mut p = fragmented(&mut fs);
        let frag_before: u64 = p
            .allocator()
            .free_regions()
            .iter()
            .filter(|e| e.len < 3 * SST)
            .map(|e| e.len)
            .sum();
        assert!(frag_before >= 10 * SST, "layout must be fragmented");

        let report = p
            .collect_garbage(
                &mut fs,
                &GcConfig {
                    fragment_threshold: 3 * SST,
                    target_fragment_ratio: 0.01,
                    max_moves: 64,
                },
            )
            .unwrap();
        assert!(report.relocated_sets > 0);
        assert!(report.moved_bytes > 0);
        assert!(
            report.fragments_after < report.fragments_before / 2,
            "fragments {} -> {}",
            report.fragments_before,
            report.fragments_after
        );
        // Every live file still reads back with its fill byte.
        for i in 0..20u64 {
            let base = 100 + i * 4;
            for j in 0..3 {
                let data = fs.read_full(base + j, IoKind::Get).unwrap();
                assert!(data.iter().all(|&b| b == i as u8), "set {i} corrupted");
            }
        }
        // Raw SMR: still zero auxiliary amplification after GC.
        let c = fs.disk().stats().kind(IoKind::Gc);
        assert_eq!(c.device_written, c.logical_written);
    }

    #[test]
    fn gc_is_noop_below_target() {
        let mut fs = store();
        let mut p = SetPolicy::new(Box::new(DynamicBandAlloc::new(
            fs.data_capacity(),
            SST,
            SST,
        )));
        let outputs: Vec<(u64, Vec<u8>)> =
            (0..3).map(|j| (10 + j, vec![1u8; SST as usize])).collect();
        p.place_outputs(&mut fs, &outputs).unwrap();
        let report = p.collect_garbage(&mut fs, &GcConfig::default()).unwrap();
        assert_eq!(report.relocated_sets, 0);
        assert_eq!(report.fragments_before, 0);
    }
}
