//! The store facade: a configured [`DbCore`] plus snapshotting of every
//! quantity the paper's figures report.

use crate::config::StoreKind;
use lsm_core::{CompactionRecord, DbCore, Result, ScrubConfig, ScrubReport, SetStats, WriteBatch};
use seal_vlog::{decode_stored, encode_inline, encode_pointer, StoredValue, ValueLog};
use smr_sim::{neutral_ratio, Extent, IoStats, Obs, ObsLayer, TraceEvent};

/// One of the paper's key-value stores, ready for workloads.
///
/// A `Store` is a self-contained instantiable unit: its simulated disk,
/// WAL, allocator, caches, and metrics registry are all private to the
/// instance, so deployments can run many of them side by side (shards,
/// replicas) with no shared mutable state beyond what the caller wires
/// up. The optional [`Store::instance`] label namespaces the instance's
/// metrics exports.
#[derive(Debug)]
pub struct Store {
    /// Which system this is.
    pub kind: StoreKind,
    /// Instance label for multi-store deployments (see
    /// [`crate::StoreConfig::instance`]).
    pub instance: Option<String>,
    /// The underlying engine.
    pub db: DbCore,
    /// Band-aligned value log when key-value separation is enabled (see
    /// [`crate::StoreConfig::vlog`]); `None` stores values inline.
    pub vlog: Option<ValueLog>,
    /// Debug-build happens-before auditor: the runtime twin of
    /// `seal-lint`'s ordering rules. `None` in release builds, where the
    /// audit compiles to nothing.
    pub ord_audit: Option<smr_sim::OrderingAuditor>,
}

/// Snapshot of everything the figures need.
#[derive(Clone, Debug)]
pub struct StoreSnapshot {
    /// Display name of the store.
    pub name: &'static str,
    /// Simulated time elapsed, ns.
    pub clock_ns: u64,
    /// Full I/O accounting (WA / AWA / MWA per Table I).
    pub io: IoStats,
    /// Per-compaction details (Fig. 10).
    pub compactions: Vec<CompactionRecord>,
    /// Set statistics when the store groups files into sets.
    pub set_stats: Option<SetStats>,
    /// Used disk span (allocator high water).
    pub high_water: u64,
    /// Bytes currently allocated to live files.
    pub allocated_bytes: u64,
    /// Recyclable free regions (Fig. 13 fragments input).
    pub free_regions: Vec<Extent>,
    /// Dynamic bands, when the allocator tracks them (Fig. 13).
    pub bands: Vec<(Extent, usize)>,
    /// Memtable flush count.
    pub flushes: u64,
}

impl StoreSnapshot {
    /// Compactions that actually rewrote data (non-trivial).
    pub fn real_compactions(&self) -> impl Iterator<Item = &CompactionRecord> {
        self.compactions.iter().filter(|c| !c.trivial_move)
    }

    /// Average compaction output size in bytes (Fig. 10(b)).
    pub fn avg_compaction_bytes(&self) -> f64 {
        let (n, total) = self
            .real_compactions()
            .fold((0u64, 0u64), |(n, t), c| (n + 1, t + c.output_bytes));
        if n == 0 {
            0.0
        } else {
            total as f64 / n as f64
        }
    }

    /// Total simulated compaction latency, ns (Fig. 10(a) aggregate).
    pub fn total_compaction_ns(&self) -> u64 {
        self.compactions.iter().map(|c| c.duration_ns).sum()
    }
}

/// The unified observability snapshot: the store's whole [`Obs`] bundle
/// (counters, gauges, latency histograms, trace ring) plus identity.
/// Produced by [`Store::metrics_snapshot`]; exports are deterministic —
/// two same-seed runs serialize byte-identically.
#[derive(Clone, Debug)]
pub struct MetricsSnapshot {
    /// Display name of the store.
    pub name: &'static str,
    /// Instance label (equals `name` for unlabeled stores); namespaces
    /// per-shard/per-replica registries in aggregated exports.
    pub instance: String,
    /// Simulated clock at snapshot time, ns.
    pub clock_ns: u64,
    /// The observability bundle, including derived gauges.
    pub obs: Obs,
}

impl MetricsSnapshot {
    /// Deterministic JSON with store identity wrapped around the obs
    /// bundle; at most `trace_tail` trace events are inlined.
    pub fn to_json(&self, trace_tail: usize) -> String {
        format!(
            "{{\"store\":\"{}\",\"instance\":\"{}\",\"clock_ns\":{},\"obs\":{}}}",
            self.name,
            self.instance,
            self.clock_ns,
            self.obs.to_json(trace_tail)
        )
    }

    /// Deterministic CSV of every counter, gauge, and histogram.
    pub fn to_csv(&self) -> String {
        self.obs.to_csv()
    }
}

impl Store {
    /// Inserts a key/value pair.
    pub fn put(&mut self, key: &[u8], value: &[u8]) -> Result<()> {
        let mut b = WriteBatch::new();
        b.put(key, value);
        self.write(b)
    }

    /// Applies a write batch atomically — the uniform multi-op write
    /// entry point every store kind exposes to the serving front-end
    /// (group commit merges concurrent writers into one such batch).
    ///
    /// With key-value separation on, values over the threshold are
    /// appended to the value log *first* (a pointer must never enter
    /// the WAL before its record is on disk) and the batch is rewritten
    /// to carry tagged inline values or pointers. A segment-directory
    /// change (a new band opened) commits a manifest checkpoint before
    /// the pointers are written, so recovery can never drop a band an
    /// acked pointer references as an orphan.
    pub fn write(&mut self, batch: WriteBatch) -> Result<()> {
        let Some(vlog) = self.vlog.as_mut() else {
            return self.db.write(batch);
        };
        let legacy_payload = batch.payload_bytes();
        let mut rewritten = WriteBatch::new();
        let mut ptr_segments: Vec<u64> = Vec::new();
        for (_, ty, key, value) in batch.iter() {
            // Lazy post-recovery rebuild of the dead-byte accounting: a
            // reopen empties the log's pointer index, so the first
            // supersession of a key afterwards would silently shadow a
            // pre-crash log record only the LSM still points to —
            // garbage no future overwrite could ever account. One LSM
            // probe on that first touch recovers the stale pointer;
            // while the index is exact (no reopen) the probe never runs.
            if !vlog.dead_is_exact() && !vlog.knows_key(key) {
                if let Some(stored) = self.db.get(key)? {
                    if let Ok(StoredValue::Pointer(p)) = decode_stored(&stored) {
                        vlog.note_dead(p);
                    }
                }
            }
            match ty {
                lsm_core::ValueType::Deletion => {
                    vlog.note_delete(key);
                    rewritten.delete(key);
                }
                lsm_core::ValueType::Value => {
                    if vlog.should_divert(value.len()) {
                        let ptr = self
                            .db
                            .with_fs_and_policy(|fs, policy| vlog.append(fs, policy, key, value))?;
                        ptr_segments.push(ptr.segment);
                        rewritten.put(key, &encode_pointer(ptr));
                    } else {
                        // A key shrinking below the threshold leaves
                        // its previous log record (if any) dead.
                        vlog.note_delete(key);
                        rewritten.put(key, &encode_inline(value));
                    }
                }
            }
        }
        if vlog.take_dirty() {
            let blob = vlog.checkpoint();
            self.db.commit_aux_state(blob)?;
            if let Some(a) = self.ord_audit.as_mut() {
                a.record_checkpoint_commit(self.db.clock_ns(), &vlog.segment_ids());
            }
        }
        if let Some(a) = self.ord_audit.as_mut() {
            let now = self.db.clock_ns();
            for &seg in &ptr_segments {
                a.record_pointer_write(now, seg);
            }
        }
        let new_payload = rewritten.payload_bytes();
        self.db.write(rewritten)?;
        // Keep the WA denominator comparable with the inline baseline:
        // the user handed over the same bytes either way, regardless of
        // whether the store kept a pointer or a tagged copy.
        let ctx = self.db.ctx();
        let mut guard = ctx.lock();
        let stats = guard.fs.disk_mut().stats_mut();
        stats.user_payload = stats.user_payload - new_payload + legacy_payload;
        Ok(())
    }

    /// Point lookup; chases value-log pointers transparently.
    pub fn get(&mut self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        match self.db.get(key)? {
            Some(stored) => self.resolve_value(key, stored),
            None => Ok(None),
        }
    }

    /// Deletes a key.
    pub fn delete(&mut self, key: &[u8]) -> Result<()> {
        let mut b = WriteBatch::new();
        b.delete(key);
        self.write(b)
    }

    /// Range scan of up to `limit` entries from `start`; chases
    /// value-log pointers transparently.
    pub fn scan(&mut self, start: &[u8], limit: usize) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        let raw = self.db.scan(start, limit)?;
        if self.vlog.is_none() {
            return Ok(raw);
        }
        let mut out = Vec::with_capacity(raw.len());
        for (key, stored) in raw {
            if let Some(value) = self.resolve_value(&key, stored)? {
                out.push((key, value));
            }
        }
        Ok(out)
    }

    /// Maps a stored LSM value to the user value: the identity for
    /// inline stores, tag-decode plus pointer chase for vlog stores. A
    /// pointer into a quarantined or corrupt record fails closed.
    fn resolve_value(&mut self, key: &[u8], stored: Vec<u8>) -> Result<Option<Vec<u8>>> {
        let Some(vlog) = self.vlog.as_ref() else {
            return Ok(Some(stored));
        };
        match decode_stored(&stored)? {
            StoredValue::Inline(v) => Ok(Some(v.to_vec())),
            StoredValue::Pointer(ptr) => {
                let t0 = self.db.clock_ns();
                let value = self
                    .db
                    .with_fs_and_policy(|fs, _| vlog.read(fs, ptr, key))?;
                let dt = self.db.clock_ns() - t0;
                let ctx = self.db.ctx();
                ctx.lock()
                    .fs
                    .disk_mut()
                    .obs_mut()
                    .latency(ObsLayer::ValueLog, "ptr_chase_ns", dt);
                Ok(Some(value))
            }
        }
    }

    /// Runs one budgeted cooperative-GC step of the value log: scans up
    /// to `budget_bytes` of the victim segment, relocates records that
    /// are still live (current LSM pointer equals the record's address),
    /// and writes the pointer fixups through the normal write path —
    /// unaccounted, so GC traffic cannot deflate the WA denominator.
    /// The victim band returns to the allocator only after the fixups
    /// are durable. Returns whether any GC work was done.
    pub fn vlog_gc_step(&mut self, budget_bytes: u64) -> Result<bool> {
        let Some(vlog) = self.vlog.as_mut() else {
            return Ok(false);
        };
        let Some(scan) = self
            .db
            .with_fs_and_policy(|fs, _| vlog.gc_scan(fs, budget_bytes))?
        else {
            return Ok(false);
        };
        // While the log's dead-record accounting is exact (no reopen
        // since the log was created), every scan entry is provably live
        // and the per-entry LSM point lookup — a head seek each on a
        // cold key — can be skipped. After recovery the accounting is
        // rebuilt lazily, so each entry must be verified the slow way.
        let exact = vlog.dead_is_exact();
        let mut fixups = WriteBatch::new();
        let mut ptr_segments: Vec<u64> = Vec::new();
        for entry in &scan.entries {
            let live = exact
                || match self.db.get(&entry.key)? {
                    Some(stored) => matches!(
                        decode_stored(&stored),
                        Ok(StoredValue::Pointer(p)) if p == entry.ptr
                    ),
                    None => false,
                };
            if !live {
                continue;
            }
            let new_ptr = self.db.with_fs_and_policy(|fs, policy| {
                vlog.relocate(fs, policy, &entry.key, &entry.value)
            })?;
            ptr_segments.push(new_ptr.segment);
            fixups.put(&entry.key, &encode_pointer(new_ptr));
        }
        // Same ordering rule as the append path: if relocation opened a
        // new band, the segment directory must commit before any fixup
        // pointer can reach the WAL, or recovery could drop the band the
        // pointers reference as an orphan and leave them dangling.
        if vlog.take_dirty() {
            let blob = vlog.checkpoint();
            self.db.commit_aux_state(blob)?;
            if let Some(a) = self.ord_audit.as_mut() {
                a.record_checkpoint_commit(self.db.clock_ns(), &vlog.segment_ids());
            }
        }
        if !fixups.is_empty() {
            if let Some(a) = self.ord_audit.as_mut() {
                let now = self.db.clock_ns();
                for &seg in &ptr_segments {
                    a.record_pointer_write(now, seg);
                }
                a.record_fixup_write(now, scan.segment);
            }
            self.db.write_unaccounted(fixups)?;
        }
        if scan.finished {
            // Durability barrier: the fixups must survive a crash before
            // the victim's bytes can be freed, or recovery could replay
            // pointers into a recycled band.
            self.db.sync_wal()?;
            if let Some(a) = self.ord_audit.as_mut() {
                a.record_durable(self.db.clock_ns());
                a.record_recycle(self.db.clock_ns(), scan.segment);
            }
            self.db
                .with_fs_and_policy(|fs, policy| vlog.retire_segment(fs, policy, scan.segment))?;
            if vlog.take_dirty() {
                let blob = vlog.checkpoint();
                self.db.commit_aux_state(blob)?;
                if let Some(a) = self.ord_audit.as_mut() {
                    a.record_checkpoint_commit(self.db.clock_ns(), &vlog.segment_ids());
                }
            }
        }
        Ok(true)
    }

    /// Whether the value log has a sealed segment awaiting GC.
    pub fn vlog_gc_pending(&self) -> bool {
        self.vlog
            .as_ref()
            .is_some_and(|v| v.gc_candidate().is_some())
    }

    /// Applies a batch shipped by a replication primary, preserving its
    /// primary-assigned sequence range (see
    /// [`DbCore::apply_replicated`]). Returns `false` when the batch
    /// was already applied (duplicate frame).
    pub fn apply_replicated(&mut self, batch: lsm_core::WriteBatch) -> Result<bool> {
        self.db.apply_replicated(batch)
    }

    /// Highest sequence number assigned (primary) or applied (replica).
    pub fn last_sequence(&self) -> u64 {
        self.db.last_sequence()
    }

    /// Flushes the memtable and quiesces compactions.
    pub fn flush(&mut self) -> Result<()> {
        self.db.flush()
    }

    /// Pins the current state for consistent reads (see
    /// [`DbCore::snapshot`]).
    pub fn pin(&mut self) -> lsm_core::Snapshot {
        self.db.snapshot()
    }

    /// Reads as of a pinned state; chases value-log pointers
    /// transparently (records are immutable until their segment
    /// retires, so a pinned pointer resolves like a current one).
    pub fn get_at(&mut self, key: &[u8], snap: &lsm_core::Snapshot) -> Result<Option<Vec<u8>>> {
        match self.db.get_at(key, snap)? {
            Some(stored) => self.resolve_value(key, stored),
            None => Ok(None),
        }
    }

    /// Releases a pinned state.
    pub fn unpin(&mut self, snap: lsm_core::Snapshot) {
        self.db.release_snapshot(snap)
    }

    /// Runs fragment garbage collection (the paper's stated future work):
    /// relocates nearly-faded sets adjacent to fragments so free space
    /// coalesces. Meaningful for set-based stores; others report zeros.
    pub fn collect_garbage(&mut self, cfg: &lsm_core::GcConfig) -> Result<lsm_core::GcReport> {
        self.db.collect_garbage(cfg)
    }

    /// Simulates a crash + restart: rebuilds the version set from the
    /// manifest (falling back to its last consistent prefix), replays
    /// the WAL with skip-and-report on torn records (buffered, unsynced
    /// WAL bytes are lost, like a real `sync=false` LevelDB), and
    /// quarantines any version file that fails table validation rather
    /// than letting it load-bear reads.
    pub fn reopen(self) -> Result<Store> {
        let mut db = self.db.reopen()?;
        db.quarantine_invalid_files()?;
        let vlog = Self::recover_vlog(self.vlog, &mut db)?;
        let ord_audit = Self::fresh_auditor(&db, vlog.as_ref());
        Ok(Store {
            kind: self.kind,
            instance: self.instance,
            db,
            vlog,
            ord_audit,
        })
    }

    /// Rebuilds the value log after recovery: the segment directory
    /// comes back from the manifest's auxiliary checkpoint, active
    /// segments are re-scanned for their true tails (torn records are
    /// discarded — their pointers never reached the WAL), and segment
    /// files no checkpoint references are returned to the allocator.
    fn recover_vlog(prev: Option<ValueLog>, db: &mut DbCore) -> Result<Option<ValueLog>> {
        let Some(old) = prev else {
            return Ok(None);
        };
        let mut vlog = ValueLog::new(*old.params());
        let blob = db.aux_state();
        db.with_fs_and_policy(|fs, policy| vlog.recover(fs, policy, blob.as_deref()))?;
        if vlog.take_dirty() {
            let fresh = vlog.checkpoint();
            db.commit_aux_state(fresh)?;
        }
        Ok(Some(vlog))
    }

    /// Simulates a power cut at the moment `image` was captured: the
    /// disk reverts to the snapshot, the placement policy relearns the
    /// surviving extents, and the usual crash recovery runs on the
    /// restored state (see [`DbCore::restore_crash_image`]).
    pub fn restore_crash_image(self, image: &lsm_core::CrashImage) -> Result<Store> {
        let mut db = self.db.restore_crash_image(image)?;
        db.quarantine_invalid_files()?;
        let vlog = Self::recover_vlog(self.vlog, &mut db)?;
        let ord_audit = Self::fresh_auditor(&db, vlog.as_ref());
        Ok(Store {
            kind: self.kind,
            instance: self.instance,
            db,
            vlog,
            ord_audit,
        })
    }

    /// Builds the debug-build ordering auditor, seeded with the segments
    /// the (possibly just-recovered) directory knows. Returns `None` in
    /// release builds, where the audit compiles to nothing.
    pub fn fresh_auditor(db: &DbCore, vlog: Option<&ValueLog>) -> Option<smr_sim::OrderingAuditor> {
        if !cfg!(debug_assertions) {
            return None;
        }
        let mut audit = smr_sim::OrderingAuditor::new();
        let segments = vlog.map(ValueLog::segment_ids).unwrap_or_default();
        audit.reset_recovered(db.clock_ns(), &segments);
        Some(audit)
    }

    /// Debug-build ack hook: asserts that every byte the caller is about
    /// to acknowledge is durable (no unsynced WAL tail). Serving layers
    /// call this at the point they report success to a client; in
    /// release builds it is a no-op.
    pub fn ordering_ack(&mut self) {
        if let Some(a) = self.ord_audit.as_mut() {
            a.record_ack(self.db.clock_ns(), self.db.wal_pending_bytes());
        }
    }

    /// Cumulative write-stall accounting (slowdown / stop / memtable
    /// stalls); only advances in serve mode.
    pub fn stall_stats(&self) -> lsm_core::StallStats {
        self.db.stall_stats()
    }

    /// Whether any level is over its compaction budget.
    pub fn needs_compaction(&self) -> bool {
        self.db.needs_compaction()
    }

    /// Flips serve mode on or off (see
    /// [`lsm_core::DbCore::set_deferred_compaction`]).
    pub fn set_deferred_compaction(&mut self, on: bool) {
        self.db.set_deferred_compaction(on)
    }

    /// Runs one background-compaction step; returns whether any work was
    /// done. The serving front-end calls this in idle gaps, standing in
    /// for LevelDB's background thread.
    pub fn compact_step(&mut self) -> Result<bool> {
        self.db.compact_step()
    }

    /// Runs one budgeted scrub step (see [`DbCore::scrub_step`]): verify
    /// up to `cfg.bytes_per_step` bytes of live tables, repairing or
    /// quarantining what fails its checksums. With key-value separation
    /// on, the same byte budget then walks value-log records: a CRC
    /// mismatch condemns the whole segment (record framing cannot
    /// resync), its readable live prefix is salvaged by relocation, and
    /// the band is fenced out of the allocator.
    pub fn scrub_step(&mut self, cfg: &ScrubConfig) -> Result<ScrubReport> {
        let mut report = self.db.scrub_step(cfg)?;
        if self.vlog.is_some() {
            self.vlog_scrub_step(cfg, &mut report)?;
        }
        Ok(report)
    }

    fn vlog_scrub_step(&mut self, cfg: &ScrubConfig, report: &mut ScrubReport) -> Result<()> {
        let step = {
            let Some(vlog) = self.vlog.as_mut() else {
                return Ok(());
            };
            self.db
                .with_fs_and_policy(|fs, _| vlog.scrub_step(fs, cfg.bytes_per_step))?
        };
        report.bytes_verified += step.bytes_scanned;
        report.blocks_verified += step.records_ok;
        report.blocks_corrupt += step.damaged.len() as u64;
        if !cfg.repair {
            return Ok(());
        }
        for seg in step.damaged {
            self.vlog_salvage_and_quarantine(seg, report)?;
        }
        Ok(())
    }

    /// Drains what is still readable out of a damaged segment, fixes up
    /// the salvaged pointers durably, then fences the band. Records past
    /// the first corrupt one are lost; their pointers serve degraded
    /// (fail-closed reads) from here on.
    fn vlog_salvage_and_quarantine(&mut self, seg: u64, report: &mut ScrubReport) -> Result<()> {
        let Some(vlog) = self.vlog.as_mut() else {
            return Ok(());
        };
        let entries = self.db.with_fs_and_policy(|fs, _| {
            // Seal first: salvage relocation must not append into the
            // very band about to be fenced.
            vlog.seal(fs, seg);
            vlog.salvage_prefix(fs, seg)
        })?;
        if let Some(a) = self.ord_audit.as_mut() {
            let now = self.db.clock_ns();
            a.record_fence(now, seg);
            a.record_repair(now, seg);
        }
        let mut fixups = WriteBatch::new();
        let mut ptr_segments: Vec<u64> = Vec::new();
        for entry in &entries {
            let live = match self.db.get(&entry.key)? {
                Some(stored) => {
                    matches!(decode_stored(&stored), Ok(StoredValue::Pointer(p)) if p == entry.ptr)
                }
                None => false,
            };
            if !live {
                continue;
            }
            let new_ptr = self.db.with_fs_and_policy(|fs, policy| {
                vlog.relocate(fs, policy, &entry.key, &entry.value)
            })?;
            ptr_segments.push(new_ptr.segment);
            fixups.put(&entry.key, &encode_pointer(new_ptr));
            report.blocks_corrected += 1;
        }
        // Commit the segment directory *before* the fixup pointers reach
        // the WAL: relocation may have opened a new band, and a crash
        // after the pointers land but before the commit would recover
        // live pointers into an orphaned segment (the PR 8 bug class —
        // found by seal-lint's checkpoint-before-pointer rule).
        if vlog.take_dirty() {
            let blob = vlog.checkpoint();
            self.db.commit_aux_state(blob)?;
            if let Some(a) = self.ord_audit.as_mut() {
                a.record_checkpoint_commit(self.db.clock_ns(), &vlog.segment_ids());
            }
        }
        if !fixups.is_empty() {
            if let Some(a) = self.ord_audit.as_mut() {
                let now = self.db.clock_ns();
                for &s in &ptr_segments {
                    a.record_pointer_write(now, s);
                }
                a.record_fixup_write(now, seg);
            }
            self.db.write_unaccounted(fixups)?;
        }
        self.db.sync_wal()?;
        if let Some(a) = self.ord_audit.as_mut() {
            a.record_durable(self.db.clock_ns());
        }
        let fenced = self
            .db
            .with_fs_and_policy(|fs, policy| vlog.quarantine_segment(fs, policy, seg))?;
        if let Some(a) = self.ord_audit.as_mut() {
            a.record_fence(self.db.clock_ns(), seg);
        }
        report.files_quarantined += 1;
        report.extents_fenced += 1;
        report.bytes_fenced += fenced;
        // The quarantine flag itself still needs a commit of its own.
        if vlog.take_dirty() {
            let blob = vlog.checkpoint();
            self.db.commit_aux_state(blob)?;
            if let Some(a) = self.ord_audit.as_mut() {
                a.record_checkpoint_commit(self.db.clock_ns(), &vlog.segment_ids());
            }
        }
        Ok(())
    }

    /// Scrubs every live table once (see [`DbCore::scrub_full`]).
    pub fn scrub_full(&mut self, cfg: &ScrubConfig) -> Result<ScrubReport> {
        self.db.scrub_full(cfg)
    }

    /// Lifetime scrub totals across all steps.
    pub fn scrub_report(&self) -> &ScrubReport {
        self.db.scrub_report()
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        self.kind.name()
    }

    /// Instance name: the configured label, or the kind's display name
    /// when the store runs alone.
    pub fn instance_name(&self) -> &str {
        self.instance.as_deref().unwrap_or_else(|| self.kind.name())
    }

    /// Simulated clock, ns.
    pub fn clock_ns(&self) -> u64 {
        self.db.clock_ns()
    }

    /// Enables or disables physical-placement tracing.
    pub fn set_tracing(&mut self, enabled: bool) {
        self.db
            .ctx()
            .lock()
            .fs
            .disk_mut()
            .trace_mut()
            .set_enabled(enabled);
    }

    /// Drains recorded trace events.
    pub fn take_trace(&mut self) -> Vec<TraceEvent> {
        let ctx = self.db.ctx();
        let mut guard = ctx.lock();
        let events = guard.fs.disk().trace().events().to_vec();
        guard.fs.disk_mut().trace_mut().clear();
        events
    }

    /// Publishes derived gauges (WA / AWA / MWA, cache hit ratios, fault
    /// counts) into the store's observability registry and returns the
    /// whole bundle. Counters and latency histograms accumulate live at
    /// the layers that emit them; everything derived here is written as a
    /// gauge, so repeated snapshots are idempotent.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        let name = self.kind.name();
        let flushes = self.db.flush_count();
        let rec = self.db.recovery_report().clone();
        let ctx = self.db.ctx();
        let mut guard = ctx.lock();
        let (bh, bm) = guard.block_cache.hit_stats();
        let (th, tm) = guard.table_cache.hit_stats();
        let stats = guard.fs.disk().stats().clone();
        let clock_ns = guard.fs.disk().clock_ns();
        let obs = guard.fs.disk_mut().obs_mut();
        // Zero-denominator ratios follow the workspace-wide neutral-1.0
        // convention (a cold cache with no lookups has missed nothing);
        // see `smr_sim::neutral_ratio` and DESIGN.md, "Ratio conventions".
        obs.gauge_set(ObsLayer::Cache, "block_hits", bh as f64);
        obs.gauge_set(ObsLayer::Cache, "block_misses", bm as f64);
        obs.gauge_set(
            ObsLayer::Cache,
            "block_hit_ratio",
            neutral_ratio(bh, bh + bm),
        );
        obs.gauge_set(ObsLayer::Cache, "table_hits", th as f64);
        obs.gauge_set(ObsLayer::Cache, "table_misses", tm as f64);
        obs.gauge_set(
            ObsLayer::Cache,
            "table_hit_ratio",
            neutral_ratio(th, th + tm),
        );
        obs.gauge_set(ObsLayer::Store, "wa", stats.wa());
        obs.gauge_set(ObsLayer::Store, "awa", stats.awa());
        obs.gauge_set(ObsLayer::Store, "mwa", stats.mwa());
        // The headline WA splits into the LSM's share (flush +
        // compaction) and the value log's (appends + GC relocation);
        // with separation off the vlog component reads neutral.
        obs.gauge_set(ObsLayer::Store, "wa_compaction", stats.wa_compaction());
        obs.gauge_set(ObsLayer::Store, "wa_vlog_gc", stats.wa_vlog_gc());
        obs.gauge_set(ObsLayer::Store, "flushes", flushes as f64);
        if let Some(vlog) = &self.vlog {
            let vs = vlog.stats();
            obs.gauge_set(ObsLayer::ValueLog, "segments", vlog.segment_count() as f64);
            obs.gauge_set(
                ObsLayer::ValueLog,
                "appended_bytes",
                vs.appended_bytes as f64,
            );
            obs.gauge_set(
                ObsLayer::ValueLog,
                "relocated_bytes",
                vs.relocated_bytes as f64,
            );
            obs.gauge_set(
                ObsLayer::ValueLog,
                "reclaimed_bytes",
                vs.reclaimed_bytes as f64,
            );
            obs.gauge_set(
                ObsLayer::ValueLog,
                "gc_wa",
                neutral_ratio(vs.appended_bytes + vs.relocated_bytes, vs.appended_bytes),
            );
        }
        let f = stats.faults;
        obs.gauge_set(
            ObsLayer::Device,
            "fault_injected_write_failures",
            f.injected_write_failures as f64,
        );
        obs.gauge_set(ObsLayer::Device, "fault_torn_writes", f.torn_writes as f64);
        obs.gauge_set(
            ObsLayer::Device,
            "fault_read_corruptions",
            f.read_corruptions as f64,
        );
        obs.gauge_set(
            ObsLayer::Device,
            "fault_transient_read_errors",
            f.transient_read_errors as f64,
        );
        obs.gauge_set(
            ObsLayer::Device,
            "fault_read_retries",
            f.read_retries as f64,
        );
        obs.gauge_set(
            ObsLayer::Device,
            "fault_checksum_failures",
            f.checksum_failures as f64,
        );
        obs.gauge_set(
            ObsLayer::Device,
            "fault_unrecoverable_reads",
            f.unrecoverable_reads as f64,
        );
        obs.gauge_set(
            ObsLayer::Device,
            "fault_fail_slow_reads",
            f.fail_slow_reads as f64,
        );
        obs.gauge_set(
            ObsLayer::Store,
            "recovery_wal_records_skipped",
            rec.wal_records_skipped as f64,
        );
        obs.gauge_set(
            ObsLayer::Store,
            "recovery_files_quarantined",
            rec.files_quarantined as f64,
        );
        obs.gauge_set(
            ObsLayer::Store,
            "recovery_manifest_records_dropped",
            rec.manifest_records_dropped as f64,
        );
        MetricsSnapshot {
            name,
            instance: self.instance_name().to_string(),
            clock_ns,
            obs: obs.clone(),
        }
    }

    /// Snapshots every reported quantity.
    pub fn snapshot(&self) -> StoreSnapshot {
        let ctx = self.db.ctx();
        let guard = ctx.lock();
        let policy = self.db.policy();
        StoreSnapshot {
            name: self.kind.name(),
            clock_ns: guard.fs.disk().clock_ns(),
            io: guard.fs.disk().stats().clone(),
            compactions: self.db.compaction_log().to_vec(),
            set_stats: policy.set_stats(),
            high_water: policy.allocator().high_water(),
            allocated_bytes: policy.allocator().allocated_bytes(),
            free_regions: policy.allocator().free_regions(),
            bands: policy.allocator().band_snapshot(),
            flushes: self.db.flush_count(),
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::config::{StoreConfig, StoreKind};
    use smr_sim::ObsLayer;

    fn exercised(kind: StoreKind) -> super::MetricsSnapshot {
        let cfg = StoreConfig::new(kind, 256 << 10, 1 << 30);
        let mut s = cfg.build().unwrap();
        for i in 0..6000u64 {
            let key = format!("key{i:08}");
            s.put(key.as_bytes(), &vec![b'v'; 256]).unwrap();
        }
        s.flush().unwrap();
        for i in 0..200u64 {
            let key = format!("key{i:08}");
            s.get(key.as_bytes()).unwrap();
        }
        s.scan(b"key", 50).unwrap();
        s.metrics_snapshot()
    }

    #[test]
    fn metrics_snapshot_covers_all_layers() {
        let m = exercised(StoreKind::SealDb);
        // Op latency percentiles from the store layer.
        let w = m.obs.histogram(ObsLayer::Store, "write_ns").unwrap();
        assert_eq!(w.count(), 6000);
        assert!(w.p95() >= w.p50());
        assert!(m.obs.histogram(ObsLayer::Store, "get_ns").is_some());
        assert!(m.obs.histogram(ObsLayer::Store, "scan_ns").is_some());
        // Device latencies and LSM byte flow accumulated live.
        assert!(m.obs.histogram(ObsLayer::Device, "write_ns").is_some());
        assert!(m.obs.registry.counter(ObsLayer::Lsm, "flush_bytes") > 0);
        // Cache hit ratios are valid probabilities.
        for g in ["block_hit_ratio", "table_hit_ratio"] {
            let r = m.obs.registry.gauge(ObsLayer::Cache, g);
            assert!((0.0..=1.0).contains(&r), "{g} = {r}");
        }
        // Amplification gauges: MWA = WA x AWA holds inside the registry.
        let wa = m.obs.registry.gauge(ObsLayer::Store, "wa");
        let awa = m.obs.registry.gauge(ObsLayer::Store, "awa");
        let mwa = m.obs.registry.gauge(ObsLayer::Store, "mwa");
        assert!(wa >= 1.0);
        assert!((mwa - wa * awa).abs() < 1e-9);
        // Fault gauges exist (zero on this clean run).
        assert_eq!(
            m.obs.registry.gauge(ObsLayer::Device, "fault_torn_writes"),
            0.0
        );
        // The allocator's band lifecycle reached the placement layer.
        assert!(m.obs.registry.counter(ObsLayer::Placement, "band-append") > 0);
        assert!(!m.obs.tracer.is_empty());
    }

    #[test]
    fn zero_traffic_ratios_follow_the_neutral_convention() {
        // A freshly opened store has no cache lookups and no writes; every
        // exported ratio must be the neutral 1.0 — never 0.0 or NaN (see
        // DESIGN.md, "Ratio conventions").
        let cfg = StoreConfig::new(StoreKind::SealDb, 256 << 10, 1 << 30);
        let s = cfg.build().unwrap();
        let m = s.metrics_snapshot();
        for (layer, g) in [
            (ObsLayer::Cache, "block_hit_ratio"),
            (ObsLayer::Cache, "table_hit_ratio"),
            (ObsLayer::Store, "wa"),
            (ObsLayer::Store, "awa"),
            (ObsLayer::Store, "mwa"),
        ] {
            assert_eq!(m.obs.registry.gauge(layer, g), 1.0, "{g}");
        }
        // And the neutral_ratio helper itself: defined everywhere, exact
        // quotient when the denominator is non-zero.
        assert_eq!(smr_sim::neutral_ratio(0, 0), 1.0);
        assert_eq!(smr_sim::neutral_ratio(3, 4), 0.75);
        assert!(smr_sim::neutral_ratio(u64::MAX, 1).is_finite());
    }

    #[test]
    fn metrics_snapshot_exports_recovery_and_fault_gauges() {
        let m = exercised(StoreKind::SealDb);
        // Clean run: the gauges exist and read zero.
        for g in [
            "recovery_wal_records_skipped",
            "recovery_files_quarantined",
            "recovery_manifest_records_dropped",
        ] {
            assert_eq!(m.obs.registry.gauge(ObsLayer::Store, g), 0.0, "{g}");
        }
        for g in ["fault_unrecoverable_reads", "fault_fail_slow_reads"] {
            assert_eq!(m.obs.registry.gauge(ObsLayer::Device, g), 0.0, "{g}");
        }
    }

    #[test]
    fn metrics_snapshot_is_deterministic() {
        let a = exercised(StoreKind::SealDb);
        let b = exercised(StoreKind::SealDb);
        assert_eq!(a.to_json(128), b.to_json(128));
        assert_eq!(a.to_csv(), b.to_csv());
        assert!(!a.to_json(128).contains("NaN"));
    }

    #[test]
    fn vlog_roundtrip_across_value_sizes_and_deletes() {
        let cfg = StoreConfig::new(StoreKind::SealDb, 256 << 10, 1 << 30).with_default_vlog();
        let mut s = cfg.build().unwrap();
        // Small values stay inline, large ones divert; both read back.
        for i in 0..500u64 {
            let key = format!("k{i:05}");
            let fill = (i % 251) as u8;
            let len = if i % 2 == 0 { 16 } else { 2048 };
            s.put(key.as_bytes(), &vec![fill; len]).unwrap();
        }
        s.flush().unwrap();
        for i in 0..500u64 {
            let key = format!("k{i:05}");
            let fill = (i % 251) as u8;
            let len = if i % 2 == 0 { 16 } else { 2048 };
            assert_eq!(
                s.get(key.as_bytes()).unwrap().as_deref(),
                Some(vec![fill; len].as_slice()),
                "key {key}"
            );
        }
        // Scans resolve pointers too.
        let rows = s.scan(b"k000", 10).unwrap();
        assert_eq!(rows.len(), 10);
        assert_eq!(rows[1].1.len(), 2048);
        // Deletes tombstone the pointer.
        s.delete(b"k00001").unwrap();
        assert_eq!(s.get(b"k00001").unwrap(), None);
        let m = s.metrics_snapshot();
        assert!(m.obs.registry.gauge(ObsLayer::ValueLog, "appended_bytes") > 0.0);
        assert!(
            m.obs
                .histogram(ObsLayer::ValueLog, "ptr_chase_ns")
                .is_some(),
            "pointer-chase latency must be recorded"
        );
    }

    #[test]
    fn vlog_survives_reopen() {
        let cfg = StoreConfig::new(StoreKind::SealDb, 256 << 10, 1 << 30).with_default_vlog();
        let mut s = cfg.build().unwrap();
        for i in 0..200u64 {
            let key = format!("p{i:05}");
            s.put(key.as_bytes(), &vec![(i % 199) as u8; 1500]).unwrap();
        }
        s.flush().unwrap();
        let mut s = s.reopen().unwrap();
        for i in 0..200u64 {
            let key = format!("p{i:05}");
            assert_eq!(
                s.get(key.as_bytes()).unwrap().as_deref(),
                Some(vec![(i % 199) as u8; 1500].as_slice()),
                "key {key} after reopen"
            );
        }
    }

    #[test]
    fn vlog_gc_reclaims_dead_segments_and_preserves_live_data() {
        let cfg = StoreConfig::new(StoreKind::SealDb, 256 << 10, 1 << 30).with_default_vlog();
        let mut s = cfg.build().unwrap();
        // Overwrite a small key set many times: earlier segments fill
        // with dead records.
        for round in 0..40u64 {
            for i in 0..60u64 {
                let key = format!("g{i:03}");
                s.put(key.as_bytes(), &vec![(round % 250) as u8; 2048])
                    .unwrap();
            }
        }
        s.flush().unwrap();
        assert!(s.vlog_gc_pending(), "overwrites must seal segments");
        let before = s.vlog.as_ref().unwrap().segment_count();
        let mut steps = 0;
        while s.vlog_gc_pending() && steps < 10_000 {
            s.vlog_gc_step(64 << 10).unwrap();
            steps += 1;
        }
        let stats = s.vlog.as_ref().unwrap().stats();
        assert!(stats.segments_retired > 0, "GC must retire segments");
        assert!(stats.reclaimed_bytes > stats.relocated_bytes);
        assert!(s.vlog.as_ref().unwrap().segment_count() < before);
        // Every key still reads its final value.
        for i in 0..60u64 {
            let key = format!("g{i:03}");
            assert_eq!(
                s.get(key.as_bytes()).unwrap().as_deref(),
                Some(vec![39u8; 2048].as_slice()),
                "key {key} after GC"
            );
        }
        // And survives a reopen after GC.
        let mut s = s.reopen().unwrap();
        for i in 0..60u64 {
            let key = format!("g{i:03}");
            assert!(s.get(key.as_bytes()).unwrap().is_some(), "{key} lost");
        }
    }

    #[test]
    fn vlog_store_metrics_are_deterministic() {
        let run = || {
            let cfg = StoreConfig::new(StoreKind::SealDb, 256 << 10, 1 << 30).with_default_vlog();
            let mut s = cfg.build().unwrap();
            for i in 0..800u64 {
                let key = format!("d{:05}", i % 120);
                s.put(key.as_bytes(), &vec![(i % 256) as u8; 1024]).unwrap();
            }
            s.flush().unwrap();
            while s.vlog_gc_pending() {
                s.vlog_gc_step(256 << 10).unwrap();
            }
            s.metrics_snapshot().to_json(64)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn metrics_snapshot_reports_per_level_compaction_bytes() {
        let m = exercised(StoreKind::LevelDb);
        // Enough churn to compact out of L0: the per-level counters from
        // the engine appear under the lsm layer.
        let total: u64 = (0..7)
            .map(|l| {
                m.obs
                    .registry
                    .counter(ObsLayer::Lsm, &format!("compaction.l{l}.bytes_out"))
            })
            .sum();
        let recorded_compactions = m.obs.registry.counter(ObsLayer::Lsm, "trivial_moves")
            + (0..7)
                .map(|l| {
                    m.obs
                        .registry
                        .counter(ObsLayer::Lsm, &format!("compaction.l{l}.count"))
                })
                .sum::<u64>();
        assert!(recorded_compactions > 0, "workload must compact");
        // Trivial moves rewrite nothing, so bytes_out may be 0, but the
        // counters must be present and consistent with the WAL sync path.
        let _ = total;
        assert!(m.obs.registry.counter(ObsLayer::Wal, "sync_bytes") > 0);
        assert!(m.obs.histogram(ObsLayer::Wal, "sync_ns").is_some());
    }
}
