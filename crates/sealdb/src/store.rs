//! The store facade: a configured [`DbCore`] plus snapshotting of every
//! quantity the paper's figures report.

use crate::config::StoreKind;
use lsm_core::{CompactionRecord, DbCore, Result, ScrubConfig, ScrubReport, SetStats, WriteBatch};
use seal_vlog::{decode_stored, encode_inline, encode_pointer, StoredValue, ValueLog};
use smr_sim::{neutral_ratio, Extent, IoStats, Obs, ObsLayer, TraceEvent};

/// One of the paper's key-value stores, ready for workloads.
///
/// A `Store` is a self-contained instantiable unit: its simulated disk,
/// WAL, allocator, caches, and metrics registry are all private to the
/// instance, so deployments can run many of them side by side (shards,
/// replicas) with no shared mutable state beyond what the caller wires
/// up. The optional [`Store::instance`] label namespaces the instance's
/// metrics exports.
#[derive(Debug)]
pub struct Store {
    /// Which system this is.
    pub kind: StoreKind,
    /// Instance label for multi-store deployments (see
    /// [`crate::StoreConfig::instance`]).
    pub instance: Option<String>,
    /// The underlying engine.
    pub db: DbCore,
    /// Band-aligned value log when key-value separation is enabled (see
    /// [`crate::StoreConfig::vlog`]); `None` stores values inline.
    pub vlog: Option<ValueLog>,
    /// Debug-build happens-before auditor: the runtime twin of
    /// `seal-lint`'s ordering rules. `None` in release builds, where the
    /// audit compiles to nothing.
    pub ord_audit: Option<smr_sim::OrderingAuditor>,
}

/// Snapshot of everything the figures need.
#[derive(Clone, Debug)]
pub struct StoreSnapshot {
    /// Display name of the store.
    pub name: &'static str,
    /// Simulated time elapsed, ns.
    pub clock_ns: u64,
    /// Full I/O accounting (WA / AWA / MWA per Table I).
    pub io: IoStats,
    /// Per-compaction details (Fig. 10).
    pub compactions: Vec<CompactionRecord>,
    /// Set statistics when the store groups files into sets.
    pub set_stats: Option<SetStats>,
    /// Used disk span (allocator high water).
    pub high_water: u64,
    /// Bytes currently allocated to live files.
    pub allocated_bytes: u64,
    /// Recyclable free regions (Fig. 13 fragments input).
    pub free_regions: Vec<Extent>,
    /// Dynamic bands, when the allocator tracks them (Fig. 13).
    pub bands: Vec<(Extent, usize)>,
    /// Memtable flush count.
    pub flushes: u64,
}

impl StoreSnapshot {
    /// Compactions that actually rewrote data (non-trivial).
    pub fn real_compactions(&self) -> impl Iterator<Item = &CompactionRecord> {
        self.compactions.iter().filter(|c| !c.trivial_move)
    }

    /// Average compaction output size in bytes (Fig. 10(b)).
    pub fn avg_compaction_bytes(&self) -> f64 {
        let (n, total) = self
            .real_compactions()
            .fold((0u64, 0u64), |(n, t), c| (n + 1, t + c.output_bytes));
        if n == 0 {
            0.0
        } else {
            total as f64 / n as f64
        }
    }

    /// Total simulated compaction latency, ns (Fig. 10(a) aggregate).
    pub fn total_compaction_ns(&self) -> u64 {
        self.compactions.iter().map(|c| c.duration_ns).sum()
    }
}

/// The unified observability snapshot: the store's whole [`Obs`] bundle
/// (counters, gauges, latency histograms, trace ring) plus identity.
/// Produced by [`Store::metrics_snapshot`]; exports are deterministic —
/// two same-seed runs serialize byte-identically.
#[derive(Clone, Debug)]
pub struct MetricsSnapshot {
    /// Display name of the store.
    pub name: &'static str,
    /// Instance label (equals `name` for unlabeled stores); namespaces
    /// per-shard/per-replica registries in aggregated exports.
    pub instance: String,
    /// Simulated clock at snapshot time, ns.
    pub clock_ns: u64,
    /// The observability bundle, including derived gauges.
    pub obs: Obs,
}

impl MetricsSnapshot {
    /// Deterministic JSON with store identity wrapped around the obs
    /// bundle; at most `trace_tail` trace events are inlined.
    pub fn to_json(&self, trace_tail: usize) -> String {
        format!(
            "{{\"store\":\"{}\",\"instance\":\"{}\",\"clock_ns\":{},\"obs\":{}}}",
            self.name,
            self.instance,
            self.clock_ns,
            self.obs.to_json(trace_tail)
        )
    }

    /// Deterministic CSV of every counter, gauge, and histogram.
    pub fn to_csv(&self) -> String {
        self.obs.to_csv()
    }
}

/// What a replication primary must ship after a cooperative-GC step
/// (see [`Store::vlog_gc_step_shipping`]): the relocated live records
/// and the sequence range their pointer fixups consumed locally.
#[derive(Debug)]
pub struct GcShipment {
    /// Relocated live `(key, original value)` pairs, in fixup order.
    /// Replicas apply these through their own value log; the pointer
    /// each side ends up with is node-local.
    pub entries: Vec<(Vec<u8>, Vec<u8>)>,
    /// First sequence number the fixup batch consumed on the primary;
    /// meaningful only when `entries` is non-empty. The shipped batch
    /// must be stamped with this so replicas see no gap.
    pub first_seq: u64,
    /// Error from the fixup write's post-commit maintenance, the
    /// durability barrier, or the victim retirement, if any. The fixups
    /// consumed their sequence numbers *before* the failing stage ran,
    /// so the shipment stays valid and a replication primary must ship
    /// `entries` even when this is set — only then surface the error to
    /// its caller.
    pub barrier_error: Option<lsm_core::Error>,
}

/// Result of [`Store::vlog_gc_relocate`]: the victim scan's identity
/// and progress plus everything a caller needs to finish (barrier,
/// retirement) and, on a replication primary, to ship.
pub(crate) struct GcRelocation {
    /// Victim segment id.
    pub(crate) victim: u64,
    /// Whether the victim's scan finished (retire it after the barrier).
    pub(crate) finished: bool,
    /// Relocated live `(key, original value)` pairs, in fixup order.
    pub(crate) entries: Vec<(Vec<u8>, Vec<u8>)>,
    /// First sequence number the fixup batch consumed; meaningful only
    /// when `entries` is non-empty.
    pub(crate) first_seq: u64,
    /// Post-commit error from the fixup write, if any. The sequence
    /// range was consumed regardless — surface this only after any
    /// shipping obligation is met.
    pub(crate) error: Option<lsm_core::Error>,
}

impl Store {
    /// Inserts a key/value pair.
    pub fn put(&mut self, key: &[u8], value: &[u8]) -> Result<()> {
        let mut b = WriteBatch::new();
        b.put(key, value);
        self.write(b)
    }

    /// Applies a write batch atomically — the uniform multi-op write
    /// entry point every store kind exposes to the serving front-end
    /// (group commit merges concurrent writers into one such batch).
    ///
    /// With key-value separation on, values over the threshold are
    /// appended to the value log *first* (a pointer must never enter
    /// the WAL before its record is on disk) and the batch is rewritten
    /// to carry tagged inline values or pointers. A segment-directory
    /// change (a new band opened) commits a manifest checkpoint before
    /// the pointers are written, so recovery can never drop a band an
    /// acked pointer references as an orphan.
    pub fn write(&mut self, batch: WriteBatch) -> Result<()> {
        if self.vlog.is_none() {
            return self.db.write(batch);
        }
        let legacy_payload = batch.payload_bytes();
        let rewritten = self.rewrite_through_vlog(&batch)?;
        let new_payload = rewritten.payload_bytes();
        self.db.write(rewritten)?;
        // Keep the WA denominator comparable with the inline baseline:
        // the user handed over the same bytes either way, regardless of
        // whether the store kept a pointer or a tagged copy.
        self.adjust_user_payload(legacy_payload, new_payload);
        Ok(())
    }

    /// Rewrites `batch` through the value log: over-threshold values
    /// are appended to the log *first* and replaced with pointers, the
    /// rest are tagged inline, deletions note their dead records. Any
    /// segment-directory change commits a manifest checkpoint before
    /// the rewritten batch is returned (checkpoint-before-pointer), and
    /// the ordering auditor sees every pointer. Shared by the primary
    /// write path and the replica apply path
    /// ([`Store::apply_replicated`]), so a replica with key-value
    /// separation keeps its own log consistent with shipped batches.
    /// Must only be called with a value log configured.
    fn rewrite_through_vlog(&mut self, batch: &WriteBatch) -> Result<WriteBatch> {
        let vlog = self.vlog.as_mut().expect("caller checked vlog");
        let mut rewritten = WriteBatch::new();
        let mut ptr_segments: Vec<u64> = Vec::new();
        for (_, ty, key, value) in batch.iter() {
            // Lazy post-recovery rebuild of the dead-byte accounting: a
            // reopen empties the log's pointer index, so the first
            // supersession of a key afterwards would silently shadow a
            // pre-crash log record only the LSM still points to —
            // garbage no future overwrite could ever account. One LSM
            // probe on that first touch recovers the stale pointer;
            // while the index is exact (no reopen) the probe never runs.
            if !vlog.dead_is_exact() && !vlog.knows_key(key) {
                if let Some(stored) = self.db.get(key)? {
                    if let Ok(StoredValue::Pointer(p)) = decode_stored(&stored) {
                        vlog.note_dead(p);
                    }
                }
            }
            match ty {
                lsm_core::ValueType::Deletion => {
                    vlog.note_delete(key);
                    rewritten.delete(key);
                }
                lsm_core::ValueType::Value => {
                    if vlog.should_divert(value.len()) {
                        let ptr = self
                            .db
                            .with_fs_and_policy(|fs, policy| vlog.append(fs, policy, key, value))?;
                        ptr_segments.push(ptr.segment);
                        rewritten.put(key, &encode_pointer(ptr));
                    } else {
                        // A key shrinking below the threshold leaves
                        // its previous log record (if any) dead.
                        vlog.note_delete(key);
                        rewritten.put(key, &encode_inline(value));
                    }
                }
            }
        }
        if vlog.take_dirty() {
            let blob = vlog.checkpoint();
            self.db.commit_aux_state(blob)?;
            if let Some(a) = self.ord_audit.as_mut() {
                a.record_checkpoint_commit(self.db.clock_ns(), &vlog.segment_ids());
            }
        }
        if let Some(a) = self.ord_audit.as_mut() {
            let now = self.db.clock_ns();
            for &seg in &ptr_segments {
                a.record_pointer_write(now, seg);
            }
        }
        Ok(rewritten)
    }

    /// Rebases the user-payload denominator after a vlog rewrite so WA
    /// stays comparable with the inline baseline (the engine accounted
    /// the rewritten bytes; the user handed over the legacy bytes).
    fn adjust_user_payload(&mut self, legacy_payload: u64, new_payload: u64) {
        let ctx = self.db.ctx();
        let mut guard = ctx.lock();
        let stats = guard.fs.disk_mut().stats_mut();
        stats.user_payload = stats.user_payload - new_payload + legacy_payload;
    }

    /// Point lookup; chases value-log pointers transparently.
    pub fn get(&mut self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        match self.db.get(key)? {
            Some(stored) => self.resolve_value(key, stored),
            None => Ok(None),
        }
    }

    /// Deletes a key.
    pub fn delete(&mut self, key: &[u8]) -> Result<()> {
        let mut b = WriteBatch::new();
        b.delete(key);
        self.write(b)
    }

    /// Range scan of up to `limit` entries from `start`; chases
    /// value-log pointers transparently.
    pub fn scan(&mut self, start: &[u8], limit: usize) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        let raw = self.db.scan(start, limit)?;
        if self.vlog.is_none() {
            return Ok(raw);
        }
        let mut out = Vec::with_capacity(raw.len());
        for (key, stored) in raw {
            if let Some(value) = self.resolve_value(&key, stored)? {
                out.push((key, value));
            }
        }
        Ok(out)
    }

    /// Maps a stored LSM value to the user value: the identity for
    /// inline stores, tag-decode plus pointer chase for vlog stores. A
    /// pointer into a quarantined or corrupt record fails closed.
    fn resolve_value(&mut self, key: &[u8], stored: Vec<u8>) -> Result<Option<Vec<u8>>> {
        let Some(vlog) = self.vlog.as_ref() else {
            return Ok(Some(stored));
        };
        match decode_stored(&stored)? {
            StoredValue::Inline(v) => Ok(Some(v.to_vec())),
            StoredValue::Pointer(ptr) => {
                let t0 = self.db.clock_ns();
                let value = self
                    .db
                    .with_fs_and_policy(|fs, _| vlog.read(fs, ptr, key))?;
                let dt = self.db.clock_ns() - t0;
                let ctx = self.db.ctx();
                ctx.lock()
                    .fs
                    .disk_mut()
                    .obs_mut()
                    .latency(ObsLayer::ValueLog, "ptr_chase_ns", dt);
                Ok(Some(value))
            }
        }
    }

    /// Runs one budgeted cooperative-GC step of the value log: scans up
    /// to `budget_bytes` of the victim segment, relocates records that
    /// are still live (current LSM pointer equals the record's address),
    /// and writes the pointer fixups through the normal write path —
    /// unaccounted, so GC traffic cannot deflate the WA denominator.
    /// The victim band returns to the allocator only after the fixups
    /// are durable. Returns whether any GC work was done.
    pub fn vlog_gc_step(&mut self, budget_bytes: u64) -> Result<bool> {
        let Some(relocation) = self.vlog_gc_relocate(budget_bytes)? else {
            return Ok(false);
        };
        if let Some(e) = relocation.error {
            // No replicas to ship to here, so a post-commit fixup error
            // surfaces immediately (the scan is unfinished; the next
            // step re-picks the victim).
            return Err(e);
        }
        let (victim, finished) = (relocation.victim, relocation.finished);
        if finished {
            // Durability barrier: the fixups must survive a crash before
            // the victim's bytes can be freed, or recovery could replay
            // pointers into a recycled band.
            self.db.sync_wal()?;
            if let Some(a) = self.ord_audit.as_mut() {
                a.record_durable(self.db.clock_ns());
                a.record_recycle(self.db.clock_ns(), victim);
            }
            let vlog = self.vlog.as_mut().expect("relocate checked vlog");
            self.db
                .with_fs_and_policy(|fs, policy| vlog.retire_segment(fs, policy, victim))?;
            if vlog.take_dirty() {
                let blob = vlog.checkpoint();
                self.db.commit_aux_state(blob)?;
                if let Some(a) = self.ord_audit.as_mut() {
                    a.record_checkpoint_commit(self.db.clock_ns(), &vlog.segment_ids());
                }
            }
        }
        Ok(true)
    }

    /// Runs one budgeted cooperative-GC step exactly like
    /// [`Store::vlog_gc_step`] — same relocation, same
    /// fixups-durable-before-recycle barrier — but additionally returns
    /// what a replication primary must ship: GC fixups consume sequence
    /// numbers on the primary (they go through the unaccounted write
    /// path), so a primary that runs GC without shipping the consumed
    /// range leaves every replica with a sequence gap that poisons all
    /// later frames. The caller (see `seal-replica`'s
    /// `Cluster::vlog_gc_step`) replicates the returned *original
    /// values*; each replica rewrites them through its own value log, so
    /// pointers stay node-local while the logical state converges.
    /// Returns `None` when there was no GC work to do.
    pub fn vlog_gc_step_shipping(&mut self, budget_bytes: u64) -> Result<Option<GcShipment>> {
        let Some(relocation) = self.vlog_gc_relocate(budget_bytes)? else {
            return Ok(None);
        };
        let mut barrier_error = relocation.error;
        if relocation.finished {
            // Durability barrier: the fixups must survive a crash before
            // the victim's bytes can be freed, or recovery could replay
            // pointers into a recycled band. An error past this point is
            // reported through the shipment, not `Err` — the fixups
            // already consumed sequence numbers, so the caller must get
            // the shipment no matter how the barrier fares.
            let finish = self.db.sync_wal().and_then(|()| {
                if let Some(a) = self.ord_audit.as_mut() {
                    a.record_durable(self.db.clock_ns());
                    a.record_recycle(self.db.clock_ns(), relocation.victim);
                }
                let vlog = self.vlog.as_mut().expect("relocate checked vlog");
                self.db.with_fs_and_policy(|fs, policy| {
                    vlog.retire_segment(fs, policy, relocation.victim)
                })?;
                if vlog.take_dirty() {
                    let blob = vlog.checkpoint();
                    self.db.commit_aux_state(blob)?;
                    if let Some(a) = self.ord_audit.as_mut() {
                        a.record_checkpoint_commit(self.db.clock_ns(), &vlog.segment_ids());
                    }
                }
                Ok(())
            });
            barrier_error = finish.err();
        }
        Ok(Some(GcShipment {
            entries: relocation.entries,
            first_seq: relocation.first_seq,
            barrier_error,
        }))
    }

    /// The scan/relocate/fixup half of one cooperative-GC step: picks
    /// the victim scan, verifies liveness, relocates live records, and
    /// writes pointer fixups through the unaccounted write path (with
    /// the checkpoint-before-pointer ordering the append path uses).
    /// Returns the victim segment id, whether its scan finished, and
    /// the relocated live records with the sequence range their fixups
    /// consumed — the caller owns the durability barrier, the
    /// retirement, and (on a replication primary) shipping the consumed
    /// range. Shared by [`Store::vlog_gc_step`] /
    /// [`Store::vlog_gc_step_shipping`] (correct barrier) and the chaos
    /// knob in `chaos_knobs.rs` (deliberately missing barrier).
    pub(crate) fn vlog_gc_relocate(&mut self, budget_bytes: u64) -> Result<Option<GcRelocation>> {
        let Some(vlog) = self.vlog.as_mut() else {
            return Ok(None);
        };
        let Some(scan) = self
            .db
            .with_fs_and_policy(|fs, _| vlog.gc_scan(fs, budget_bytes))?
        else {
            return Ok(None);
        };
        // While the log's dead-record accounting is exact (no reopen
        // since the log was created), every scan entry is provably live
        // and the per-entry LSM point lookup — a head seek each on a
        // cold key — can be skipped. After recovery the accounting is
        // rebuilt lazily, so each entry must be verified the slow way.
        let exact = vlog.dead_is_exact();
        let mut fixups = WriteBatch::new();
        let mut ptr_segments: Vec<u64> = Vec::new();
        let mut shipped: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
        for entry in &scan.entries {
            let live = exact
                || match self.db.get(&entry.key)? {
                    Some(stored) => matches!(
                        decode_stored(&stored),
                        Ok(StoredValue::Pointer(p)) if p == entry.ptr
                    ),
                    None => false,
                };
            if !live {
                continue;
            }
            let new_ptr = self.db.with_fs_and_policy(|fs, policy| {
                vlog.relocate(fs, policy, &entry.key, &entry.value)
            })?;
            ptr_segments.push(new_ptr.segment);
            fixups.put(&entry.key, &encode_pointer(new_ptr));
            shipped.push((entry.key.clone(), entry.value.clone()));
        }
        // Same ordering rule as the append path: if relocation opened a
        // new band, the segment directory must commit before any fixup
        // pointer can reach the WAL, or recovery could drop the band the
        // pointers reference as an orphan and leave them dangling.
        if vlog.take_dirty() {
            let blob = vlog.checkpoint();
            self.db.commit_aux_state(blob)?;
            if let Some(a) = self.ord_audit.as_mut() {
                a.record_checkpoint_commit(self.db.clock_ns(), &vlog.segment_ids());
            }
        }
        let first_seq = self.db.last_sequence() + 1;
        if !fixups.is_empty() {
            let count = u64::from(fixups.count());
            if let Some(a) = self.ord_audit.as_mut() {
                let now = self.db.clock_ns();
                for &seg in &ptr_segments {
                    a.record_pointer_write(now, seg);
                }
                a.record_fixup_write(now, scan.segment);
            }
            if let Err(e) = self.db.write_unaccounted(fixups) {
                if self.db.last_sequence() < first_seq + count - 1 {
                    // The fixup batch never committed: no sequence
                    // numbers were consumed, nothing to ship.
                    return Err(e);
                }
                // Committed, then errored in post-commit maintenance
                // (e.g. a faulted flush): the sequence range IS
                // consumed, so the caller must still see the
                // relocation — a replication primary has to ship it or
                // every replica inherits a gap. Reporting the scan as
                // unfinished defers the retire barrier; the next step
                // rescans the victim and finds these records dead.
                return Ok(Some(GcRelocation {
                    victim: scan.segment,
                    finished: false,
                    entries: shipped,
                    first_seq,
                    error: Some(e),
                }));
            }
        }
        Ok(Some(GcRelocation {
            victim: scan.segment,
            finished: scan.finished,
            entries: shipped,
            first_seq,
            error: None,
        }))
    }

    /// Whether the value log has a sealed segment awaiting GC.
    pub fn vlog_gc_pending(&self) -> bool {
        self.vlog
            .as_ref()
            .is_some_and(|v| v.gc_candidate().is_some())
    }

    /// Applies a batch shipped by a replication primary, preserving its
    /// primary-assigned sequence range (see
    /// [`DbCore::apply_replicated`]). Returns `false` when the batch
    /// was already applied (duplicate frame).
    ///
    /// With key-value separation on, the shipped batch carries the
    /// primary's *original* values (the primary rewrites through its
    /// own log after capturing the wire bytes), so the replica rewrites
    /// it through its **own** value log here — same divert threshold,
    /// same checkpoint-before-pointer ordering — and re-stamps the
    /// primary's sequence range on the rewritten batch. Duplicate
    /// frames are rejected *before* the rewrite so a redelivery cannot
    /// litter the replica's log with unreachable records.
    pub fn apply_replicated(&mut self, batch: lsm_core::WriteBatch) -> Result<bool> {
        if self.vlog.is_none() {
            return self.db.apply_replicated(batch);
        }
        if batch.is_empty() {
            return Ok(false);
        }
        let first = batch.sequence();
        let last = first + u64::from(batch.count()) - 1;
        if last <= self.db.last_sequence() {
            return Ok(false);
        }
        let legacy_payload = batch.payload_bytes();
        let mut rewritten = self.rewrite_through_vlog(&batch)?;
        rewritten.set_sequence(first);
        let new_payload = rewritten.payload_bytes();
        let applied = self.db.apply_replicated(rewritten)?;
        self.adjust_user_payload(legacy_payload, new_payload);
        Ok(applied)
    }

    /// Highest sequence number assigned (primary) or applied (replica).
    pub fn last_sequence(&self) -> u64 {
        self.db.last_sequence()
    }

    /// Flushes the memtable and quiesces compactions.
    pub fn flush(&mut self) -> Result<()> {
        self.db.flush()
    }

    /// Pins the current state for consistent reads (see
    /// [`DbCore::snapshot`]).
    pub fn pin(&mut self) -> lsm_core::Snapshot {
        self.db.snapshot()
    }

    /// Reads as of a pinned state; chases value-log pointers
    /// transparently (records are immutable until their segment
    /// retires, so a pinned pointer resolves like a current one).
    pub fn get_at(&mut self, key: &[u8], snap: &lsm_core::Snapshot) -> Result<Option<Vec<u8>>> {
        match self.db.get_at(key, snap)? {
            Some(stored) => self.resolve_value(key, stored),
            None => Ok(None),
        }
    }

    /// Releases a pinned state.
    pub fn unpin(&mut self, snap: lsm_core::Snapshot) {
        self.db.release_snapshot(snap)
    }

    /// Runs fragment garbage collection (the paper's stated future work):
    /// relocates nearly-faded sets adjacent to fragments so free space
    /// coalesces. Meaningful for set-based stores; others report zeros.
    pub fn collect_garbage(&mut self, cfg: &lsm_core::GcConfig) -> Result<lsm_core::GcReport> {
        self.db.collect_garbage(cfg)
    }

    /// Simulates a crash + restart: rebuilds the version set from the
    /// manifest (falling back to its last consistent prefix), replays
    /// the WAL with skip-and-report on torn records (buffered, unsynced
    /// WAL bytes are lost, like a real `sync=false` LevelDB), and
    /// quarantines any version file that fails table validation rather
    /// than letting it load-bear reads.
    pub fn reopen(self) -> Result<Store> {
        let mut db = self.db.reopen()?;
        db.quarantine_invalid_files()?;
        let vlog = Self::recover_vlog(self.vlog, &mut db)?;
        let ord_audit = Self::fresh_auditor(&db, vlog.as_ref());
        Ok(Store {
            kind: self.kind,
            instance: self.instance,
            db,
            vlog,
            ord_audit,
        })
    }

    /// Rebuilds the value log after recovery: the segment directory
    /// comes back from the manifest's auxiliary checkpoint, active
    /// segments are re-scanned for their true tails (torn records are
    /// discarded — their pointers never reached the WAL), and segment
    /// files no checkpoint references are returned to the allocator.
    fn recover_vlog(prev: Option<ValueLog>, db: &mut DbCore) -> Result<Option<ValueLog>> {
        let Some(old) = prev else {
            return Ok(None);
        };
        let mut vlog = ValueLog::new(*old.params());
        let blob = db.aux_state();
        db.with_fs_and_policy(|fs, policy| vlog.recover(fs, policy, blob.as_deref()))?;
        if vlog.take_dirty() {
            let fresh = vlog.checkpoint();
            db.commit_aux_state(fresh)?;
        }
        Ok(Some(vlog))
    }

    /// Simulates a power cut at the moment `image` was captured: the
    /// disk reverts to the snapshot, the placement policy relearns the
    /// surviving extents, and the usual crash recovery runs on the
    /// restored state (see [`DbCore::restore_crash_image`]).
    pub fn restore_crash_image(self, image: &lsm_core::CrashImage) -> Result<Store> {
        let mut db = self.db.restore_crash_image(image)?;
        db.quarantine_invalid_files()?;
        let vlog = Self::recover_vlog(self.vlog, &mut db)?;
        let ord_audit = Self::fresh_auditor(&db, vlog.as_ref());
        Ok(Store {
            kind: self.kind,
            instance: self.instance,
            db,
            vlog,
            ord_audit,
        })
    }

    /// Builds the debug-build ordering auditor, seeded with the segments
    /// the (possibly just-recovered) directory knows. Returns `None` in
    /// release builds, where the audit compiles to nothing.
    pub fn fresh_auditor(db: &DbCore, vlog: Option<&ValueLog>) -> Option<smr_sim::OrderingAuditor> {
        if !cfg!(debug_assertions) {
            return None;
        }
        let mut audit = smr_sim::OrderingAuditor::new();
        let segments = vlog.map(ValueLog::segment_ids).unwrap_or_default();
        audit.reset_recovered(db.clock_ns(), &segments);
        Some(audit)
    }

    /// Debug-build ack hook: asserts that every byte the caller is about
    /// to acknowledge is durable (no unsynced WAL tail). Serving layers
    /// call this at the point they report success to a client; in
    /// release builds it is a no-op.
    pub fn ordering_ack(&mut self) {
        if let Some(a) = self.ord_audit.as_mut() {
            a.record_ack(self.db.clock_ns(), self.db.wal_pending_bytes());
        }
    }

    /// Cumulative write-stall accounting (slowdown / stop / memtable
    /// stalls); only advances in serve mode.
    pub fn stall_stats(&self) -> lsm_core::StallStats {
        self.db.stall_stats()
    }

    /// Whether any level is over its compaction budget.
    pub fn needs_compaction(&self) -> bool {
        self.db.needs_compaction()
    }

    /// Flips serve mode on or off (see
    /// [`lsm_core::DbCore::set_deferred_compaction`]).
    pub fn set_deferred_compaction(&mut self, on: bool) {
        self.db.set_deferred_compaction(on)
    }

    /// Runs one background-compaction step; returns whether any work was
    /// done. The serving front-end calls this in idle gaps, standing in
    /// for LevelDB's background thread.
    pub fn compact_step(&mut self) -> Result<bool> {
        self.db.compact_step()
    }

    /// Runs one budgeted scrub step (see [`DbCore::scrub_step`]): verify
    /// up to `cfg.bytes_per_step` bytes of live tables, repairing or
    /// quarantining what fails its checksums. With key-value separation
    /// on, the same byte budget then walks value-log records: a CRC
    /// mismatch condemns the whole segment (record framing cannot
    /// resync), its readable live prefix is salvaged by relocation, and
    /// the band is fenced out of the allocator.
    pub fn scrub_step(&mut self, cfg: &ScrubConfig) -> Result<ScrubReport> {
        let mut report = self.db.scrub_step(cfg)?;
        if self.vlog.is_some() {
            self.vlog_scrub_step(cfg, &mut report)?;
        }
        Ok(report)
    }

    fn vlog_scrub_step(&mut self, cfg: &ScrubConfig, report: &mut ScrubReport) -> Result<()> {
        let step = {
            let Some(vlog) = self.vlog.as_mut() else {
                return Ok(());
            };
            self.db
                .with_fs_and_policy(|fs, _| vlog.scrub_step(fs, cfg.bytes_per_step))?
        };
        report.bytes_verified += step.bytes_scanned;
        report.blocks_verified += step.records_ok;
        report.blocks_corrupt += step.damaged.len() as u64;
        if !cfg.repair {
            return Ok(());
        }
        for seg in step.damaged {
            self.vlog_salvage_and_quarantine(seg, report)?;
        }
        Ok(())
    }

    /// Drains what is still readable out of a damaged segment, fixes up
    /// the salvaged pointers durably, then fences the band. Records past
    /// the first corrupt one are lost; their pointers serve degraded
    /// (fail-closed reads) from here on.
    fn vlog_salvage_and_quarantine(&mut self, seg: u64, report: &mut ScrubReport) -> Result<()> {
        let Some(vlog) = self.vlog.as_mut() else {
            return Ok(());
        };
        let entries = self.db.with_fs_and_policy(|fs, _| {
            // Seal first: salvage relocation must not append into the
            // very band about to be fenced.
            vlog.seal(fs, seg);
            vlog.salvage_prefix(fs, seg)
        })?;
        if let Some(a) = self.ord_audit.as_mut() {
            let now = self.db.clock_ns();
            a.record_fence(now, seg);
            a.record_repair(now, seg);
        }
        let mut fixups = WriteBatch::new();
        let mut ptr_segments: Vec<u64> = Vec::new();
        for entry in &entries {
            let live = match self.db.get(&entry.key)? {
                Some(stored) => {
                    matches!(decode_stored(&stored), Ok(StoredValue::Pointer(p)) if p == entry.ptr)
                }
                None => false,
            };
            if !live {
                continue;
            }
            let new_ptr = self.db.with_fs_and_policy(|fs, policy| {
                vlog.relocate(fs, policy, &entry.key, &entry.value)
            })?;
            ptr_segments.push(new_ptr.segment);
            fixups.put(&entry.key, &encode_pointer(new_ptr));
            report.blocks_corrected += 1;
        }
        // Commit the segment directory *before* the fixup pointers reach
        // the WAL: relocation may have opened a new band, and a crash
        // after the pointers land but before the commit would recover
        // live pointers into an orphaned segment (the PR 8 bug class —
        // found by seal-lint's checkpoint-before-pointer rule).
        if vlog.take_dirty() {
            let blob = vlog.checkpoint();
            self.db.commit_aux_state(blob)?;
            if let Some(a) = self.ord_audit.as_mut() {
                a.record_checkpoint_commit(self.db.clock_ns(), &vlog.segment_ids());
            }
        }
        if !fixups.is_empty() {
            if let Some(a) = self.ord_audit.as_mut() {
                let now = self.db.clock_ns();
                for &s in &ptr_segments {
                    a.record_pointer_write(now, s);
                }
                a.record_fixup_write(now, seg);
            }
            self.db.write_unaccounted(fixups)?;
        }
        self.db.sync_wal()?;
        if let Some(a) = self.ord_audit.as_mut() {
            a.record_durable(self.db.clock_ns());
        }
        let fenced = self
            .db
            .with_fs_and_policy(|fs, policy| vlog.quarantine_segment(fs, policy, seg))?;
        if let Some(a) = self.ord_audit.as_mut() {
            a.record_fence(self.db.clock_ns(), seg);
        }
        report.files_quarantined += 1;
        report.extents_fenced += 1;
        report.bytes_fenced += fenced;
        // The quarantine flag itself still needs a commit of its own.
        if vlog.take_dirty() {
            let blob = vlog.checkpoint();
            self.db.commit_aux_state(blob)?;
            if let Some(a) = self.ord_audit.as_mut() {
                a.record_checkpoint_commit(self.db.clock_ns(), &vlog.segment_ids());
            }
        }
        Ok(())
    }

    /// Scrubs every live table once (see [`DbCore::scrub_full`]).
    pub fn scrub_full(&mut self, cfg: &ScrubConfig) -> Result<ScrubReport> {
        self.db.scrub_full(cfg)
    }

    /// Lifetime scrub totals across all steps.
    pub fn scrub_report(&self) -> &ScrubReport {
        self.db.scrub_report()
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        self.kind.name()
    }

    /// Instance name: the configured label, or the kind's display name
    /// when the store runs alone.
    pub fn instance_name(&self) -> &str {
        self.instance.as_deref().unwrap_or_else(|| self.kind.name())
    }

    /// Simulated clock, ns.
    pub fn clock_ns(&self) -> u64 {
        self.db.clock_ns()
    }

    /// Enables or disables physical-placement tracing.
    pub fn set_tracing(&mut self, enabled: bool) {
        self.db
            .ctx()
            .lock()
            .fs
            .disk_mut()
            .trace_mut()
            .set_enabled(enabled);
    }

    /// Drains recorded trace events.
    pub fn take_trace(&mut self) -> Vec<TraceEvent> {
        let ctx = self.db.ctx();
        let mut guard = ctx.lock();
        let events = guard.fs.disk().trace().events().to_vec();
        guard.fs.disk_mut().trace_mut().clear();
        events
    }

    /// Publishes derived gauges (WA / AWA / MWA, cache hit ratios, fault
    /// counts) into the store's observability registry and returns the
    /// whole bundle. Counters and latency histograms accumulate live at
    /// the layers that emit them; everything derived here is written as a
    /// gauge, so repeated snapshots are idempotent.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        let name = self.kind.name();
        let flushes = self.db.flush_count();
        let rec = self.db.recovery_report().clone();
        let ctx = self.db.ctx();
        let mut guard = ctx.lock();
        let (bh, bm) = guard.block_cache.hit_stats();
        let (th, tm) = guard.table_cache.hit_stats();
        let stats = guard.fs.disk().stats().clone();
        let clock_ns = guard.fs.disk().clock_ns();
        let obs = guard.fs.disk_mut().obs_mut();
        // Zero-denominator ratios follow the workspace-wide neutral-1.0
        // convention (a cold cache with no lookups has missed nothing);
        // see `smr_sim::neutral_ratio` and DESIGN.md, "Ratio conventions".
        obs.gauge_set(ObsLayer::Cache, "block_hits", bh as f64);
        obs.gauge_set(ObsLayer::Cache, "block_misses", bm as f64);
        obs.gauge_set(
            ObsLayer::Cache,
            "block_hit_ratio",
            neutral_ratio(bh, bh + bm),
        );
        obs.gauge_set(ObsLayer::Cache, "table_hits", th as f64);
        obs.gauge_set(ObsLayer::Cache, "table_misses", tm as f64);
        obs.gauge_set(
            ObsLayer::Cache,
            "table_hit_ratio",
            neutral_ratio(th, th + tm),
        );
        obs.gauge_set(ObsLayer::Store, "wa", stats.wa());
        obs.gauge_set(ObsLayer::Store, "awa", stats.awa());
        obs.gauge_set(ObsLayer::Store, "mwa", stats.mwa());
        // The headline WA splits into the LSM's share (flush +
        // compaction) and the value log's (appends + GC relocation);
        // with separation off the vlog component reads neutral.
        obs.gauge_set(ObsLayer::Store, "wa_compaction", stats.wa_compaction());
        obs.gauge_set(ObsLayer::Store, "wa_vlog_gc", stats.wa_vlog_gc());
        obs.gauge_set(ObsLayer::Store, "flushes", flushes as f64);
        if let Some(vlog) = &self.vlog {
            let vs = vlog.stats();
            obs.gauge_set(ObsLayer::ValueLog, "segments", vlog.segment_count() as f64);
            obs.gauge_set(
                ObsLayer::ValueLog,
                "appended_bytes",
                vs.appended_bytes as f64,
            );
            obs.gauge_set(
                ObsLayer::ValueLog,
                "relocated_bytes",
                vs.relocated_bytes as f64,
            );
            obs.gauge_set(
                ObsLayer::ValueLog,
                "reclaimed_bytes",
                vs.reclaimed_bytes as f64,
            );
            obs.gauge_set(
                ObsLayer::ValueLog,
                "gc_wa",
                neutral_ratio(vs.appended_bytes + vs.relocated_bytes, vs.appended_bytes),
            );
        }
        let f = stats.faults;
        obs.gauge_set(
            ObsLayer::Device,
            "fault_injected_write_failures",
            f.injected_write_failures as f64,
        );
        obs.gauge_set(ObsLayer::Device, "fault_torn_writes", f.torn_writes as f64);
        obs.gauge_set(
            ObsLayer::Device,
            "fault_read_corruptions",
            f.read_corruptions as f64,
        );
        obs.gauge_set(
            ObsLayer::Device,
            "fault_transient_read_errors",
            f.transient_read_errors as f64,
        );
        obs.gauge_set(
            ObsLayer::Device,
            "fault_read_retries",
            f.read_retries as f64,
        );
        obs.gauge_set(
            ObsLayer::Device,
            "fault_checksum_failures",
            f.checksum_failures as f64,
        );
        obs.gauge_set(
            ObsLayer::Device,
            "fault_unrecoverable_reads",
            f.unrecoverable_reads as f64,
        );
        obs.gauge_set(
            ObsLayer::Device,
            "fault_fail_slow_reads",
            f.fail_slow_reads as f64,
        );
        obs.gauge_set(
            ObsLayer::Store,
            "recovery_wal_records_skipped",
            rec.wal_records_skipped as f64,
        );
        obs.gauge_set(
            ObsLayer::Store,
            "recovery_files_quarantined",
            rec.files_quarantined as f64,
        );
        obs.gauge_set(
            ObsLayer::Store,
            "recovery_manifest_records_dropped",
            rec.manifest_records_dropped as f64,
        );
        MetricsSnapshot {
            name,
            instance: self.instance_name().to_string(),
            clock_ns,
            obs: obs.clone(),
        }
    }

    /// Snapshots every reported quantity.
    pub fn snapshot(&self) -> StoreSnapshot {
        let ctx = self.db.ctx();
        let guard = ctx.lock();
        let policy = self.db.policy();
        StoreSnapshot {
            name: self.kind.name(),
            clock_ns: guard.fs.disk().clock_ns(),
            io: guard.fs.disk().stats().clone(),
            compactions: self.db.compaction_log().to_vec(),
            set_stats: policy.set_stats(),
            high_water: policy.allocator().high_water(),
            allocated_bytes: policy.allocator().allocated_bytes(),
            free_regions: policy.allocator().free_regions(),
            bands: policy.allocator().band_snapshot(),
            flushes: self.db.flush_count(),
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::config::{StoreConfig, StoreKind};
    use smr_sim::ObsLayer;

    fn exercised(kind: StoreKind) -> super::MetricsSnapshot {
        let cfg = StoreConfig::new(kind, 256 << 10, 1 << 30);
        let mut s = cfg.build().unwrap();
        for i in 0..6000u64 {
            let key = format!("key{i:08}");
            s.put(key.as_bytes(), &vec![b'v'; 256]).unwrap();
        }
        s.flush().unwrap();
        for i in 0..200u64 {
            let key = format!("key{i:08}");
            s.get(key.as_bytes()).unwrap();
        }
        s.scan(b"key", 50).unwrap();
        s.metrics_snapshot()
    }

    #[test]
    fn metrics_snapshot_covers_all_layers() {
        let m = exercised(StoreKind::SealDb);
        // Op latency percentiles from the store layer.
        let w = m.obs.histogram(ObsLayer::Store, "write_ns").unwrap();
        assert_eq!(w.count(), 6000);
        assert!(w.p95() >= w.p50());
        assert!(m.obs.histogram(ObsLayer::Store, "get_ns").is_some());
        assert!(m.obs.histogram(ObsLayer::Store, "scan_ns").is_some());
        // Device latencies and LSM byte flow accumulated live.
        assert!(m.obs.histogram(ObsLayer::Device, "write_ns").is_some());
        assert!(m.obs.registry.counter(ObsLayer::Lsm, "flush_bytes") > 0);
        // Cache hit ratios are valid probabilities.
        for g in ["block_hit_ratio", "table_hit_ratio"] {
            let r = m.obs.registry.gauge(ObsLayer::Cache, g);
            assert!((0.0..=1.0).contains(&r), "{g} = {r}");
        }
        // Amplification gauges: MWA = WA x AWA holds inside the registry.
        let wa = m.obs.registry.gauge(ObsLayer::Store, "wa");
        let awa = m.obs.registry.gauge(ObsLayer::Store, "awa");
        let mwa = m.obs.registry.gauge(ObsLayer::Store, "mwa");
        assert!(wa >= 1.0);
        assert!((mwa - wa * awa).abs() < 1e-9);
        // Fault gauges exist (zero on this clean run).
        assert_eq!(
            m.obs.registry.gauge(ObsLayer::Device, "fault_torn_writes"),
            0.0
        );
        // The allocator's band lifecycle reached the placement layer.
        assert!(m.obs.registry.counter(ObsLayer::Placement, "band-append") > 0);
        assert!(!m.obs.tracer.is_empty());
    }

    #[test]
    fn zero_traffic_ratios_follow_the_neutral_convention() {
        // A freshly opened store has no cache lookups and no writes; every
        // exported ratio must be the neutral 1.0 — never 0.0 or NaN (see
        // DESIGN.md, "Ratio conventions").
        let cfg = StoreConfig::new(StoreKind::SealDb, 256 << 10, 1 << 30);
        let s = cfg.build().unwrap();
        let m = s.metrics_snapshot();
        for (layer, g) in [
            (ObsLayer::Cache, "block_hit_ratio"),
            (ObsLayer::Cache, "table_hit_ratio"),
            (ObsLayer::Store, "wa"),
            (ObsLayer::Store, "awa"),
            (ObsLayer::Store, "mwa"),
        ] {
            assert_eq!(m.obs.registry.gauge(layer, g), 1.0, "{g}");
        }
        // And the neutral_ratio helper itself: defined everywhere, exact
        // quotient when the denominator is non-zero.
        assert_eq!(smr_sim::neutral_ratio(0, 0), 1.0);
        assert_eq!(smr_sim::neutral_ratio(3, 4), 0.75);
        assert!(smr_sim::neutral_ratio(u64::MAX, 1).is_finite());
    }

    #[test]
    fn metrics_snapshot_exports_recovery_and_fault_gauges() {
        let m = exercised(StoreKind::SealDb);
        // Clean run: the gauges exist and read zero.
        for g in [
            "recovery_wal_records_skipped",
            "recovery_files_quarantined",
            "recovery_manifest_records_dropped",
        ] {
            assert_eq!(m.obs.registry.gauge(ObsLayer::Store, g), 0.0, "{g}");
        }
        for g in ["fault_unrecoverable_reads", "fault_fail_slow_reads"] {
            assert_eq!(m.obs.registry.gauge(ObsLayer::Device, g), 0.0, "{g}");
        }
    }

    #[test]
    fn metrics_snapshot_is_deterministic() {
        let a = exercised(StoreKind::SealDb);
        let b = exercised(StoreKind::SealDb);
        assert_eq!(a.to_json(128), b.to_json(128));
        assert_eq!(a.to_csv(), b.to_csv());
        assert!(!a.to_json(128).contains("NaN"));
    }

    #[test]
    fn vlog_roundtrip_across_value_sizes_and_deletes() {
        let cfg = StoreConfig::new(StoreKind::SealDb, 256 << 10, 1 << 30).with_default_vlog();
        let mut s = cfg.build().unwrap();
        // Small values stay inline, large ones divert; both read back.
        for i in 0..500u64 {
            let key = format!("k{i:05}");
            let fill = (i % 251) as u8;
            let len = if i % 2 == 0 { 16 } else { 2048 };
            s.put(key.as_bytes(), &vec![fill; len]).unwrap();
        }
        s.flush().unwrap();
        for i in 0..500u64 {
            let key = format!("k{i:05}");
            let fill = (i % 251) as u8;
            let len = if i % 2 == 0 { 16 } else { 2048 };
            assert_eq!(
                s.get(key.as_bytes()).unwrap().as_deref(),
                Some(vec![fill; len].as_slice()),
                "key {key}"
            );
        }
        // Scans resolve pointers too.
        let rows = s.scan(b"k000", 10).unwrap();
        assert_eq!(rows.len(), 10);
        assert_eq!(rows[1].1.len(), 2048);
        // Deletes tombstone the pointer.
        s.delete(b"k00001").unwrap();
        assert_eq!(s.get(b"k00001").unwrap(), None);
        let m = s.metrics_snapshot();
        assert!(m.obs.registry.gauge(ObsLayer::ValueLog, "appended_bytes") > 0.0);
        assert!(
            m.obs
                .histogram(ObsLayer::ValueLog, "ptr_chase_ns")
                .is_some(),
            "pointer-chase latency must be recorded"
        );
    }

    #[test]
    fn vlog_survives_reopen() {
        let cfg = StoreConfig::new(StoreKind::SealDb, 256 << 10, 1 << 30).with_default_vlog();
        let mut s = cfg.build().unwrap();
        for i in 0..200u64 {
            let key = format!("p{i:05}");
            s.put(key.as_bytes(), &vec![(i % 199) as u8; 1500]).unwrap();
        }
        s.flush().unwrap();
        let mut s = s.reopen().unwrap();
        for i in 0..200u64 {
            let key = format!("p{i:05}");
            assert_eq!(
                s.get(key.as_bytes()).unwrap().as_deref(),
                Some(vec![(i % 199) as u8; 1500].as_slice()),
                "key {key} after reopen"
            );
        }
    }

    #[test]
    fn vlog_gc_reclaims_dead_segments_and_preserves_live_data() {
        let cfg = StoreConfig::new(StoreKind::SealDb, 256 << 10, 1 << 30).with_default_vlog();
        let mut s = cfg.build().unwrap();
        // Overwrite a small key set many times: earlier segments fill
        // with dead records.
        for round in 0..40u64 {
            for i in 0..60u64 {
                let key = format!("g{i:03}");
                s.put(key.as_bytes(), &vec![(round % 250) as u8; 2048])
                    .unwrap();
            }
        }
        s.flush().unwrap();
        assert!(s.vlog_gc_pending(), "overwrites must seal segments");
        let before = s.vlog.as_ref().unwrap().segment_count();
        let mut steps = 0;
        while s.vlog_gc_pending() && steps < 10_000 {
            s.vlog_gc_step(64 << 10).unwrap();
            steps += 1;
        }
        let stats = s.vlog.as_ref().unwrap().stats();
        assert!(stats.segments_retired > 0, "GC must retire segments");
        assert!(stats.reclaimed_bytes > stats.relocated_bytes);
        assert!(s.vlog.as_ref().unwrap().segment_count() < before);
        // Every key still reads its final value.
        for i in 0..60u64 {
            let key = format!("g{i:03}");
            assert_eq!(
                s.get(key.as_bytes()).unwrap().as_deref(),
                Some(vec![39u8; 2048].as_slice()),
                "key {key} after GC"
            );
        }
        // And survives a reopen after GC.
        let mut s = s.reopen().unwrap();
        for i in 0..60u64 {
            let key = format!("g{i:03}");
            assert!(s.get(key.as_bytes()).unwrap().is_some(), "{key} lost");
        }
    }

    #[test]
    fn vlog_store_metrics_are_deterministic() {
        let run = || {
            let cfg = StoreConfig::new(StoreKind::SealDb, 256 << 10, 1 << 30).with_default_vlog();
            let mut s = cfg.build().unwrap();
            for i in 0..800u64 {
                let key = format!("d{:05}", i % 120);
                s.put(key.as_bytes(), &vec![(i % 256) as u8; 1024]).unwrap();
            }
            s.flush().unwrap();
            while s.vlog_gc_pending() {
                s.vlog_gc_step(256 << 10).unwrap();
            }
            s.metrics_snapshot().to_json(64)
        };
        assert_eq!(run(), run());
    }

    /// Replication × key-value separation: the primary ships the batch
    /// bytes it captured *before* its own vlog rewrite, and the replica
    /// rewrites them through its **own** log — values land in the
    /// replica's vlog, sequences track the primary's, and a redelivered
    /// frame is rejected before it can litter the replica's log.
    #[test]
    fn apply_replicated_with_vlog_rewrites_through_own_log() {
        let cfg = StoreConfig::new(StoreKind::SealDb, 256 << 10, 1 << 30).with_default_vlog();
        let mut primary = cfg.clone().build().unwrap();
        let mut replica = cfg.build().unwrap();
        let mut wires: Vec<(Vec<u8>, u64)> = Vec::new();
        for round in 0..30u64 {
            let mut b = lsm_core::WriteBatch::new();
            for i in 0..8u64 {
                let key = format!("r{i:03}");
                b.put(key.as_bytes(), &vec![(round % 250) as u8; 2048]);
            }
            b.put(b"inline", &[round as u8; 16]);
            let wire = b.rep().to_vec();
            let count = u64::from(b.count());
            primary.write(b).unwrap();
            let seq = primary.db.last_sequence() - count + 1;
            wires.push((wire, seq));
        }
        for (wire, seq) in &wires {
            let mut shipped = lsm_core::WriteBatch::decode(wire).unwrap();
            shipped.set_sequence(*seq);
            assert!(replica.apply_replicated(shipped).unwrap());
        }
        assert_eq!(primary.db.last_sequence(), replica.db.last_sequence());
        // The replica diverted large values into its own log.
        let appended = replica
            .metrics_snapshot()
            .obs
            .registry
            .gauge(ObsLayer::ValueLog, "appended_bytes");
        assert!(appended > 0.0, "replica must rewrite through its own vlog");
        // Redelivered frame: rejected before the rewrite, so the
        // replica's log gains nothing.
        let (wire, seq) = wires.last().unwrap();
        let mut dup = lsm_core::WriteBatch::decode(wire).unwrap();
        dup.set_sequence(*seq);
        assert!(!replica.apply_replicated(dup).unwrap());
        let after = replica
            .metrics_snapshot()
            .obs
            .registry
            .gauge(ObsLayer::ValueLog, "appended_bytes");
        assert_eq!(appended, after, "duplicate frame must not litter the vlog");
        // Both stores serve the final values.
        for i in 0..8u64 {
            let key = format!("r{i:03}");
            assert_eq!(
                replica.get(key.as_bytes()).unwrap(),
                primary.get(key.as_bytes()).unwrap(),
                "key {key} diverged"
            );
            assert_eq!(
                replica.get(key.as_bytes()).unwrap().as_deref(),
                Some(vec![29u8; 2048].as_slice())
            );
        }
    }

    /// The chaos knob really re-introduces the PR 8 bug: retiring a
    /// victim whose pointer fixups are not yet durable trips the debug
    /// ordering auditor at the recycle record.
    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "were not yet durable")]
    fn retire_before_sync_panics_under_ordering_audit() {
        let cfg = StoreConfig::new(StoreKind::SealDb, 256 << 10, 1 << 30).with_vlog(
            seal_vlog::VlogParams {
                segment_bytes: 32 << 10,
                value_threshold: 64,
                ..seal_vlog::VlogParams::default()
            },
        );
        let mut s = cfg.build().unwrap();
        // Two writes per key: the second crosses the hotness threshold,
        // so every key's live version lands in a *sealed-to-be* hot
        // segment (write-once keys would sit in the forever-open cold
        // head, out of the GC's reach).
        for round in 0..2u64 {
            for i in 0..60u64 {
                let key = format!("k{i:03}");
                s.put(key.as_bytes(), &vec![(round + i) as u8; 1024])
                    .unwrap();
            }
        }
        // Churn a subset: keys k000..k009 are never written again, so
        // their live records sit in hot segments otherwise full of
        // garbage — the scan must relocate them and write fixups.
        for round in 0..4u64 {
            for i in 10..60u64 {
                let key = format!("k{i:03}");
                s.put(key.as_bytes(), &vec![(round % 250) as u8; 1024])
                    .unwrap();
            }
        }
        s.flush().unwrap();
        assert!(s.vlog_gc_pending(), "churn must seal segments");
        // A budget larger than any segment: each call scans, relocates,
        // writes fixups, and retires in one step — without the barrier.
        // Fully-dead victims retire first (no fixups, no violation);
        // the first mixed victim trips the auditor.
        let mut steps = 0;
        while s.vlog_gc_pending() && steps < 1_000 {
            s.vlog_gc_step_retire_before_sync(1 << 20).unwrap();
            steps += 1;
        }
        unreachable!("ordering auditor must catch the missing barrier");
    }

    #[test]
    fn metrics_snapshot_reports_per_level_compaction_bytes() {
        let m = exercised(StoreKind::LevelDb);
        // Enough churn to compact out of L0: the per-level counters from
        // the engine appear under the lsm layer.
        let total: u64 = (0..7)
            .map(|l| {
                m.obs
                    .registry
                    .counter(ObsLayer::Lsm, &format!("compaction.l{l}.bytes_out"))
            })
            .sum();
        let recorded_compactions = m.obs.registry.counter(ObsLayer::Lsm, "trivial_moves")
            + (0..7)
                .map(|l| {
                    m.obs
                        .registry
                        .counter(ObsLayer::Lsm, &format!("compaction.l{l}.count"))
                })
                .sum::<u64>();
        assert!(recorded_compactions > 0, "workload must compact");
        // Trivial moves rewrite nothing, so bytes_out may be 0, but the
        // counters must be present and consistent with the WAL sync path.
        let _ = total;
        assert!(m.obs.registry.counter(ObsLayer::Wal, "sync_bytes") > 0);
        assert!(m.obs.histogram(ObsLayer::Wal, "sync_ns").is_some());
    }
}
