//! The store facade: a configured [`DbCore`] plus snapshotting of every
//! quantity the paper's figures report.

use crate::config::StoreKind;
use lsm_core::{CompactionRecord, DbCore, Result, ScrubConfig, ScrubReport, SetStats};
use smr_sim::{neutral_ratio, Extent, IoStats, Obs, ObsLayer, TraceEvent};

/// One of the paper's key-value stores, ready for workloads.
///
/// A `Store` is a self-contained instantiable unit: its simulated disk,
/// WAL, allocator, caches, and metrics registry are all private to the
/// instance, so deployments can run many of them side by side (shards,
/// replicas) with no shared mutable state beyond what the caller wires
/// up. The optional [`Store::instance`] label namespaces the instance's
/// metrics exports.
#[derive(Debug)]
pub struct Store {
    /// Which system this is.
    pub kind: StoreKind,
    /// Instance label for multi-store deployments (see
    /// [`crate::StoreConfig::instance`]).
    pub instance: Option<String>,
    /// The underlying engine.
    pub db: DbCore,
}

/// Snapshot of everything the figures need.
#[derive(Clone, Debug)]
pub struct StoreSnapshot {
    /// Display name of the store.
    pub name: &'static str,
    /// Simulated time elapsed, ns.
    pub clock_ns: u64,
    /// Full I/O accounting (WA / AWA / MWA per Table I).
    pub io: IoStats,
    /// Per-compaction details (Fig. 10).
    pub compactions: Vec<CompactionRecord>,
    /// Set statistics when the store groups files into sets.
    pub set_stats: Option<SetStats>,
    /// Used disk span (allocator high water).
    pub high_water: u64,
    /// Bytes currently allocated to live files.
    pub allocated_bytes: u64,
    /// Recyclable free regions (Fig. 13 fragments input).
    pub free_regions: Vec<Extent>,
    /// Dynamic bands, when the allocator tracks them (Fig. 13).
    pub bands: Vec<(Extent, usize)>,
    /// Memtable flush count.
    pub flushes: u64,
}

impl StoreSnapshot {
    /// Compactions that actually rewrote data (non-trivial).
    pub fn real_compactions(&self) -> impl Iterator<Item = &CompactionRecord> {
        self.compactions.iter().filter(|c| !c.trivial_move)
    }

    /// Average compaction output size in bytes (Fig. 10(b)).
    pub fn avg_compaction_bytes(&self) -> f64 {
        let (n, total) = self
            .real_compactions()
            .fold((0u64, 0u64), |(n, t), c| (n + 1, t + c.output_bytes));
        if n == 0 {
            0.0
        } else {
            total as f64 / n as f64
        }
    }

    /// Total simulated compaction latency, ns (Fig. 10(a) aggregate).
    pub fn total_compaction_ns(&self) -> u64 {
        self.compactions.iter().map(|c| c.duration_ns).sum()
    }
}

/// The unified observability snapshot: the store's whole [`Obs`] bundle
/// (counters, gauges, latency histograms, trace ring) plus identity.
/// Produced by [`Store::metrics_snapshot`]; exports are deterministic —
/// two same-seed runs serialize byte-identically.
#[derive(Clone, Debug)]
pub struct MetricsSnapshot {
    /// Display name of the store.
    pub name: &'static str,
    /// Instance label (equals `name` for unlabeled stores); namespaces
    /// per-shard/per-replica registries in aggregated exports.
    pub instance: String,
    /// Simulated clock at snapshot time, ns.
    pub clock_ns: u64,
    /// The observability bundle, including derived gauges.
    pub obs: Obs,
}

impl MetricsSnapshot {
    /// Deterministic JSON with store identity wrapped around the obs
    /// bundle; at most `trace_tail` trace events are inlined.
    pub fn to_json(&self, trace_tail: usize) -> String {
        format!(
            "{{\"store\":\"{}\",\"instance\":\"{}\",\"clock_ns\":{},\"obs\":{}}}",
            self.name,
            self.instance,
            self.clock_ns,
            self.obs.to_json(trace_tail)
        )
    }

    /// Deterministic CSV of every counter, gauge, and histogram.
    pub fn to_csv(&self) -> String {
        self.obs.to_csv()
    }
}

impl Store {
    /// Inserts a key/value pair.
    pub fn put(&mut self, key: &[u8], value: &[u8]) -> Result<()> {
        self.db.put(key, value)
    }

    /// Applies a write batch atomically — the uniform multi-op write
    /// entry point every store kind exposes to the serving front-end
    /// (group commit merges concurrent writers into one such batch).
    pub fn write(&mut self, batch: lsm_core::WriteBatch) -> Result<()> {
        self.db.write(batch)
    }

    /// Point lookup.
    pub fn get(&mut self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        self.db.get(key)
    }

    /// Deletes a key.
    pub fn delete(&mut self, key: &[u8]) -> Result<()> {
        self.db.delete(key)
    }

    /// Range scan of up to `limit` entries from `start`.
    pub fn scan(&mut self, start: &[u8], limit: usize) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        self.db.scan(start, limit)
    }

    /// Applies a batch shipped by a replication primary, preserving its
    /// primary-assigned sequence range (see
    /// [`DbCore::apply_replicated`]). Returns `false` when the batch
    /// was already applied (duplicate frame).
    pub fn apply_replicated(&mut self, batch: lsm_core::WriteBatch) -> Result<bool> {
        self.db.apply_replicated(batch)
    }

    /// Highest sequence number assigned (primary) or applied (replica).
    pub fn last_sequence(&self) -> u64 {
        self.db.last_sequence()
    }

    /// Flushes the memtable and quiesces compactions.
    pub fn flush(&mut self) -> Result<()> {
        self.db.flush()
    }

    /// Pins the current state for consistent reads (see
    /// [`DbCore::snapshot`]).
    pub fn pin(&mut self) -> lsm_core::Snapshot {
        self.db.snapshot()
    }

    /// Reads as of a pinned state.
    pub fn get_at(&mut self, key: &[u8], snap: &lsm_core::Snapshot) -> Result<Option<Vec<u8>>> {
        self.db.get_at(key, snap)
    }

    /// Releases a pinned state.
    pub fn unpin(&mut self, snap: lsm_core::Snapshot) {
        self.db.release_snapshot(snap)
    }

    /// Runs fragment garbage collection (the paper's stated future work):
    /// relocates nearly-faded sets adjacent to fragments so free space
    /// coalesces. Meaningful for set-based stores; others report zeros.
    pub fn collect_garbage(&mut self, cfg: &lsm_core::GcConfig) -> Result<lsm_core::GcReport> {
        self.db.collect_garbage(cfg)
    }

    /// Simulates a crash + restart: rebuilds the version set from the
    /// manifest (falling back to its last consistent prefix), replays
    /// the WAL with skip-and-report on torn records (buffered, unsynced
    /// WAL bytes are lost, like a real `sync=false` LevelDB), and
    /// quarantines any version file that fails table validation rather
    /// than letting it load-bear reads.
    pub fn reopen(self) -> Result<Store> {
        let mut db = self.db.reopen()?;
        db.quarantine_invalid_files()?;
        Ok(Store {
            kind: self.kind,
            instance: self.instance,
            db,
        })
    }

    /// Simulates a power cut at the moment `image` was captured: the
    /// disk reverts to the snapshot, the placement policy relearns the
    /// surviving extents, and the usual crash recovery runs on the
    /// restored state (see [`DbCore::restore_crash_image`]).
    pub fn restore_crash_image(self, image: &lsm_core::CrashImage) -> Result<Store> {
        let mut db = self.db.restore_crash_image(image)?;
        db.quarantine_invalid_files()?;
        Ok(Store {
            kind: self.kind,
            instance: self.instance,
            db,
        })
    }

    /// Cumulative write-stall accounting (slowdown / stop / memtable
    /// stalls); only advances in serve mode.
    pub fn stall_stats(&self) -> lsm_core::StallStats {
        self.db.stall_stats()
    }

    /// Whether any level is over its compaction budget.
    pub fn needs_compaction(&self) -> bool {
        self.db.needs_compaction()
    }

    /// Flips serve mode on or off (see
    /// [`lsm_core::DbCore::set_deferred_compaction`]).
    pub fn set_deferred_compaction(&mut self, on: bool) {
        self.db.set_deferred_compaction(on)
    }

    /// Runs one background-compaction step; returns whether any work was
    /// done. The serving front-end calls this in idle gaps, standing in
    /// for LevelDB's background thread.
    pub fn compact_step(&mut self) -> Result<bool> {
        self.db.compact_step()
    }

    /// Runs one budgeted scrub step (see [`DbCore::scrub_step`]): verify
    /// up to `cfg.bytes_per_step` bytes of live tables, repairing or
    /// quarantining what fails its checksums.
    pub fn scrub_step(&mut self, cfg: &ScrubConfig) -> Result<ScrubReport> {
        self.db.scrub_step(cfg)
    }

    /// Scrubs every live table once (see [`DbCore::scrub_full`]).
    pub fn scrub_full(&mut self, cfg: &ScrubConfig) -> Result<ScrubReport> {
        self.db.scrub_full(cfg)
    }

    /// Lifetime scrub totals across all steps.
    pub fn scrub_report(&self) -> &ScrubReport {
        self.db.scrub_report()
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        self.kind.name()
    }

    /// Instance name: the configured label, or the kind's display name
    /// when the store runs alone.
    pub fn instance_name(&self) -> &str {
        self.instance.as_deref().unwrap_or_else(|| self.kind.name())
    }

    /// Simulated clock, ns.
    pub fn clock_ns(&self) -> u64 {
        self.db.clock_ns()
    }

    /// Enables or disables physical-placement tracing.
    pub fn set_tracing(&mut self, enabled: bool) {
        self.db
            .ctx()
            .lock()
            .fs
            .disk_mut()
            .trace_mut()
            .set_enabled(enabled);
    }

    /// Drains recorded trace events.
    pub fn take_trace(&mut self) -> Vec<TraceEvent> {
        let ctx = self.db.ctx();
        let mut guard = ctx.lock();
        let events = guard.fs.disk().trace().events().to_vec();
        guard.fs.disk_mut().trace_mut().clear();
        events
    }

    /// Publishes derived gauges (WA / AWA / MWA, cache hit ratios, fault
    /// counts) into the store's observability registry and returns the
    /// whole bundle. Counters and latency histograms accumulate live at
    /// the layers that emit them; everything derived here is written as a
    /// gauge, so repeated snapshots are idempotent.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        let name = self.kind.name();
        let flushes = self.db.flush_count();
        let rec = self.db.recovery_report().clone();
        let ctx = self.db.ctx();
        let mut guard = ctx.lock();
        let (bh, bm) = guard.block_cache.hit_stats();
        let (th, tm) = guard.table_cache.hit_stats();
        let stats = guard.fs.disk().stats().clone();
        let clock_ns = guard.fs.disk().clock_ns();
        let obs = guard.fs.disk_mut().obs_mut();
        // Zero-denominator ratios follow the workspace-wide neutral-1.0
        // convention (a cold cache with no lookups has missed nothing);
        // see `smr_sim::neutral_ratio` and DESIGN.md, "Ratio conventions".
        obs.gauge_set(ObsLayer::Cache, "block_hits", bh as f64);
        obs.gauge_set(ObsLayer::Cache, "block_misses", bm as f64);
        obs.gauge_set(
            ObsLayer::Cache,
            "block_hit_ratio",
            neutral_ratio(bh, bh + bm),
        );
        obs.gauge_set(ObsLayer::Cache, "table_hits", th as f64);
        obs.gauge_set(ObsLayer::Cache, "table_misses", tm as f64);
        obs.gauge_set(
            ObsLayer::Cache,
            "table_hit_ratio",
            neutral_ratio(th, th + tm),
        );
        obs.gauge_set(ObsLayer::Store, "wa", stats.wa());
        obs.gauge_set(ObsLayer::Store, "awa", stats.awa());
        obs.gauge_set(ObsLayer::Store, "mwa", stats.mwa());
        obs.gauge_set(ObsLayer::Store, "flushes", flushes as f64);
        let f = stats.faults;
        obs.gauge_set(
            ObsLayer::Device,
            "fault_injected_write_failures",
            f.injected_write_failures as f64,
        );
        obs.gauge_set(ObsLayer::Device, "fault_torn_writes", f.torn_writes as f64);
        obs.gauge_set(
            ObsLayer::Device,
            "fault_read_corruptions",
            f.read_corruptions as f64,
        );
        obs.gauge_set(
            ObsLayer::Device,
            "fault_transient_read_errors",
            f.transient_read_errors as f64,
        );
        obs.gauge_set(
            ObsLayer::Device,
            "fault_read_retries",
            f.read_retries as f64,
        );
        obs.gauge_set(
            ObsLayer::Device,
            "fault_checksum_failures",
            f.checksum_failures as f64,
        );
        obs.gauge_set(
            ObsLayer::Device,
            "fault_unrecoverable_reads",
            f.unrecoverable_reads as f64,
        );
        obs.gauge_set(
            ObsLayer::Device,
            "fault_fail_slow_reads",
            f.fail_slow_reads as f64,
        );
        obs.gauge_set(
            ObsLayer::Store,
            "recovery_wal_records_skipped",
            rec.wal_records_skipped as f64,
        );
        obs.gauge_set(
            ObsLayer::Store,
            "recovery_files_quarantined",
            rec.files_quarantined as f64,
        );
        obs.gauge_set(
            ObsLayer::Store,
            "recovery_manifest_records_dropped",
            rec.manifest_records_dropped as f64,
        );
        MetricsSnapshot {
            name,
            instance: self.instance_name().to_string(),
            clock_ns,
            obs: obs.clone(),
        }
    }

    /// Snapshots every reported quantity.
    pub fn snapshot(&self) -> StoreSnapshot {
        let ctx = self.db.ctx();
        let guard = ctx.lock();
        let policy = self.db.policy();
        StoreSnapshot {
            name: self.kind.name(),
            clock_ns: guard.fs.disk().clock_ns(),
            io: guard.fs.disk().stats().clone(),
            compactions: self.db.compaction_log().to_vec(),
            set_stats: policy.set_stats(),
            high_water: policy.allocator().high_water(),
            allocated_bytes: policy.allocator().allocated_bytes(),
            free_regions: policy.allocator().free_regions(),
            bands: policy.allocator().band_snapshot(),
            flushes: self.db.flush_count(),
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::config::{StoreConfig, StoreKind};
    use smr_sim::ObsLayer;

    fn exercised(kind: StoreKind) -> super::MetricsSnapshot {
        let cfg = StoreConfig::new(kind, 256 << 10, 1 << 30);
        let mut s = cfg.build().unwrap();
        for i in 0..6000u64 {
            let key = format!("key{i:08}");
            s.put(key.as_bytes(), &vec![b'v'; 256]).unwrap();
        }
        s.flush().unwrap();
        for i in 0..200u64 {
            let key = format!("key{i:08}");
            s.get(key.as_bytes()).unwrap();
        }
        s.scan(b"key", 50).unwrap();
        s.metrics_snapshot()
    }

    #[test]
    fn metrics_snapshot_covers_all_layers() {
        let m = exercised(StoreKind::SealDb);
        // Op latency percentiles from the store layer.
        let w = m.obs.histogram(ObsLayer::Store, "write_ns").unwrap();
        assert_eq!(w.count(), 6000);
        assert!(w.p95() >= w.p50());
        assert!(m.obs.histogram(ObsLayer::Store, "get_ns").is_some());
        assert!(m.obs.histogram(ObsLayer::Store, "scan_ns").is_some());
        // Device latencies and LSM byte flow accumulated live.
        assert!(m.obs.histogram(ObsLayer::Device, "write_ns").is_some());
        assert!(m.obs.registry.counter(ObsLayer::Lsm, "flush_bytes") > 0);
        // Cache hit ratios are valid probabilities.
        for g in ["block_hit_ratio", "table_hit_ratio"] {
            let r = m.obs.registry.gauge(ObsLayer::Cache, g);
            assert!((0.0..=1.0).contains(&r), "{g} = {r}");
        }
        // Amplification gauges: MWA = WA x AWA holds inside the registry.
        let wa = m.obs.registry.gauge(ObsLayer::Store, "wa");
        let awa = m.obs.registry.gauge(ObsLayer::Store, "awa");
        let mwa = m.obs.registry.gauge(ObsLayer::Store, "mwa");
        assert!(wa >= 1.0);
        assert!((mwa - wa * awa).abs() < 1e-9);
        // Fault gauges exist (zero on this clean run).
        assert_eq!(
            m.obs.registry.gauge(ObsLayer::Device, "fault_torn_writes"),
            0.0
        );
        // The allocator's band lifecycle reached the placement layer.
        assert!(m.obs.registry.counter(ObsLayer::Placement, "band-append") > 0);
        assert!(!m.obs.tracer.is_empty());
    }

    #[test]
    fn zero_traffic_ratios_follow_the_neutral_convention() {
        // A freshly opened store has no cache lookups and no writes; every
        // exported ratio must be the neutral 1.0 — never 0.0 or NaN (see
        // DESIGN.md, "Ratio conventions").
        let cfg = StoreConfig::new(StoreKind::SealDb, 256 << 10, 1 << 30);
        let s = cfg.build().unwrap();
        let m = s.metrics_snapshot();
        for (layer, g) in [
            (ObsLayer::Cache, "block_hit_ratio"),
            (ObsLayer::Cache, "table_hit_ratio"),
            (ObsLayer::Store, "wa"),
            (ObsLayer::Store, "awa"),
            (ObsLayer::Store, "mwa"),
        ] {
            assert_eq!(m.obs.registry.gauge(layer, g), 1.0, "{g}");
        }
        // And the neutral_ratio helper itself: defined everywhere, exact
        // quotient when the denominator is non-zero.
        assert_eq!(smr_sim::neutral_ratio(0, 0), 1.0);
        assert_eq!(smr_sim::neutral_ratio(3, 4), 0.75);
        assert!(smr_sim::neutral_ratio(u64::MAX, 1).is_finite());
    }

    #[test]
    fn metrics_snapshot_exports_recovery_and_fault_gauges() {
        let m = exercised(StoreKind::SealDb);
        // Clean run: the gauges exist and read zero.
        for g in [
            "recovery_wal_records_skipped",
            "recovery_files_quarantined",
            "recovery_manifest_records_dropped",
        ] {
            assert_eq!(m.obs.registry.gauge(ObsLayer::Store, g), 0.0, "{g}");
        }
        for g in ["fault_unrecoverable_reads", "fault_fail_slow_reads"] {
            assert_eq!(m.obs.registry.gauge(ObsLayer::Device, g), 0.0, "{g}");
        }
    }

    #[test]
    fn metrics_snapshot_is_deterministic() {
        let a = exercised(StoreKind::SealDb);
        let b = exercised(StoreKind::SealDb);
        assert_eq!(a.to_json(128), b.to_json(128));
        assert_eq!(a.to_csv(), b.to_csv());
        assert!(!a.to_json(128).contains("NaN"));
    }

    #[test]
    fn metrics_snapshot_reports_per_level_compaction_bytes() {
        let m = exercised(StoreKind::LevelDb);
        // Enough churn to compact out of L0: the per-level counters from
        // the engine appear under the lsm layer.
        let total: u64 = (0..7)
            .map(|l| {
                m.obs
                    .registry
                    .counter(ObsLayer::Lsm, &format!("compaction.l{l}.bytes_out"))
            })
            .sum();
        let recorded_compactions = m.obs.registry.counter(ObsLayer::Lsm, "trivial_moves")
            + (0..7)
                .map(|l| {
                    m.obs
                        .registry
                        .counter(ObsLayer::Lsm, &format!("compaction.l{l}.count"))
                })
                .sum::<u64>();
        assert!(recorded_compactions > 0, "workload must compact");
        // Trivial moves rewrite nothing, so bytes_out may be 0, but the
        // counters must be present and consistent with the WAL sync path.
        let _ = total;
        assert!(m.obs.registry.counter(ObsLayer::Wal, "sync_bytes") > 0);
        assert!(m.obs.histogram(ObsLayer::Wal, "sync_ns").is_some());
    }
}
