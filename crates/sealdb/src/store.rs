//! The store facade: a configured [`DbCore`] plus snapshotting of every
//! quantity the paper's figures report.

use crate::config::StoreKind;
use lsm_core::{CompactionRecord, DbCore, Result, SetStats};
use smr_sim::{Extent, IoStats, TraceEvent};

/// One of the paper's key-value stores, ready for workloads.
pub struct Store {
    /// Which system this is.
    pub kind: StoreKind,
    /// The underlying engine.
    pub db: DbCore,
}

/// Snapshot of everything the figures need.
#[derive(Clone, Debug)]
pub struct StoreSnapshot {
    /// Display name of the store.
    pub name: &'static str,
    /// Simulated time elapsed, ns.
    pub clock_ns: u64,
    /// Full I/O accounting (WA / AWA / MWA per Table I).
    pub io: IoStats,
    /// Per-compaction details (Fig. 10).
    pub compactions: Vec<CompactionRecord>,
    /// Set statistics when the store groups files into sets.
    pub set_stats: Option<SetStats>,
    /// Used disk span (allocator high water).
    pub high_water: u64,
    /// Bytes currently allocated to live files.
    pub allocated_bytes: u64,
    /// Recyclable free regions (Fig. 13 fragments input).
    pub free_regions: Vec<Extent>,
    /// Dynamic bands, when the allocator tracks them (Fig. 13).
    pub bands: Vec<(Extent, usize)>,
    /// Memtable flush count.
    pub flushes: u64,
}

impl StoreSnapshot {
    /// Compactions that actually rewrote data (non-trivial).
    pub fn real_compactions(&self) -> impl Iterator<Item = &CompactionRecord> {
        self.compactions.iter().filter(|c| !c.trivial_move)
    }

    /// Average compaction output size in bytes (Fig. 10(b)).
    pub fn avg_compaction_bytes(&self) -> f64 {
        let (n, total) = self
            .real_compactions()
            .fold((0u64, 0u64), |(n, t), c| (n + 1, t + c.output_bytes));
        if n == 0 {
            0.0
        } else {
            total as f64 / n as f64
        }
    }

    /// Total simulated compaction latency, ns (Fig. 10(a) aggregate).
    pub fn total_compaction_ns(&self) -> u64 {
        self.compactions.iter().map(|c| c.duration_ns).sum()
    }
}

impl Store {
    /// Inserts a key/value pair.
    pub fn put(&mut self, key: &[u8], value: &[u8]) -> Result<()> {
        self.db.put(key, value)
    }

    /// Point lookup.
    pub fn get(&mut self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        self.db.get(key)
    }

    /// Deletes a key.
    pub fn delete(&mut self, key: &[u8]) -> Result<()> {
        self.db.delete(key)
    }

    /// Range scan of up to `limit` entries from `start`.
    pub fn scan(&mut self, start: &[u8], limit: usize) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        self.db.scan(start, limit)
    }

    /// Flushes the memtable and quiesces compactions.
    pub fn flush(&mut self) -> Result<()> {
        self.db.flush()
    }

    /// Pins the current state for consistent reads (see
    /// [`DbCore::snapshot`]).
    pub fn pin(&mut self) -> lsm_core::Snapshot {
        self.db.snapshot()
    }

    /// Reads as of a pinned state.
    pub fn get_at(&mut self, key: &[u8], snap: &lsm_core::Snapshot) -> Result<Option<Vec<u8>>> {
        self.db.get_at(key, snap)
    }

    /// Releases a pinned state.
    pub fn unpin(&mut self, snap: lsm_core::Snapshot) {
        self.db.release_snapshot(snap)
    }

    /// Runs fragment garbage collection (the paper's stated future work):
    /// relocates nearly-faded sets adjacent to fragments so free space
    /// coalesces. Meaningful for set-based stores; others report zeros.
    pub fn collect_garbage(&mut self, cfg: &lsm_core::GcConfig) -> Result<lsm_core::GcReport> {
        self.db.collect_garbage(cfg)
    }

    /// Simulates a crash + restart: rebuilds the version set from the
    /// manifest (falling back to its last consistent prefix), replays
    /// the WAL with skip-and-report on torn records (buffered, unsynced
    /// WAL bytes are lost, like a real `sync=false` LevelDB), and
    /// quarantines any version file that fails table validation rather
    /// than letting it load-bear reads.
    pub fn reopen(self) -> Result<Store> {
        let mut db = self.db.reopen()?;
        db.quarantine_invalid_files()?;
        Ok(Store {
            kind: self.kind,
            db,
        })
    }

    /// Simulates a power cut at the moment `image` was captured: the
    /// disk reverts to the snapshot, the placement policy relearns the
    /// surviving extents, and the usual crash recovery runs on the
    /// restored state (see [`DbCore::restore_crash_image`]).
    pub fn restore_crash_image(self, image: &lsm_core::CrashImage) -> Result<Store> {
        let mut db = self.db.restore_crash_image(image)?;
        db.quarantine_invalid_files()?;
        Ok(Store {
            kind: self.kind,
            db,
        })
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        self.kind.name()
    }

    /// Simulated clock, ns.
    pub fn clock_ns(&self) -> u64 {
        self.db.clock_ns()
    }

    /// Enables or disables physical-placement tracing.
    pub fn set_tracing(&mut self, enabled: bool) {
        self.db
            .ctx()
            .lock()
            .fs
            .disk_mut()
            .trace_mut()
            .set_enabled(enabled);
    }

    /// Drains recorded trace events.
    pub fn take_trace(&mut self) -> Vec<TraceEvent> {
        let ctx = self.db.ctx();
        let mut guard = ctx.lock();
        let events = guard.fs.disk().trace().events().to_vec();
        guard.fs.disk_mut().trace_mut().clear();
        events
    }

    /// Snapshots every reported quantity.
    pub fn snapshot(&self) -> StoreSnapshot {
        let ctx = self.db.ctx();
        let guard = ctx.lock();
        let policy = self.db.policy();
        StoreSnapshot {
            name: self.kind.name(),
            clock_ns: guard.fs.disk().clock_ns(),
            io: guard.fs.disk().stats().clone(),
            compactions: self.db.compaction_log().to_vec(),
            set_stats: policy.set_stats(),
            high_water: policy.allocator().high_water(),
            allocated_bytes: policy.allocator().allocated_bytes(),
            free_regions: policy.allocator().free_regions(),
            bands: policy.allocator().band_snapshot(),
            flushes: self.db.flush_count(),
        }
    }
}
