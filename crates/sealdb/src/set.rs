//! Set bookkeeping (§III-A, §III-C of the paper).
//!
//! A *set* groups the SSTables written by one compaction (or one flush)
//! into a single contiguous on-disk region. Sets are "produced or faded
//! by a compaction": when a member SSTable is later consumed as a
//! compaction victim it is only *marked invalid* — its bytes are
//! reclaimed when the whole region fades ("the space of an invalid
//! victim SSTable is recycled until the set it belongs to becomes
//! invalid").

use lsm_core::types::FileId;
use lsm_core::SetStats;
use smr_sim::Extent;
use std::collections::{BTreeMap, BTreeSet};

/// One on-disk set region.
#[derive(Clone, Debug)]
pub struct SetRegion {
    /// The contiguous extent the allocator handed out for the region.
    pub ext: Extent,
    /// All member files written into the region.
    pub members: Vec<FileId>,
    /// Members still valid (not yet consumed by a compaction).
    pub live: BTreeSet<FileId>,
    /// Whether the region came from a compaction (vs a flush).
    pub from_compaction: bool,
}

impl SetRegion {
    /// Number of invalidated members.
    pub fn invalid_count(&self) -> usize {
        self.members.len() - self.live.len()
    }
}

/// Registry of all live set regions.
#[derive(Debug, Default)]
pub struct SetRegistry {
    next_id: u64,
    regions: BTreeMap<u64, SetRegion>,
    file_region: BTreeMap<FileId, u64>,
    stats: SetStats,
}

impl SetRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        SetRegistry {
            next_id: 1,
            ..Default::default()
        }
    }

    /// Registers a new set region and returns its id.
    pub fn register(&mut self, ext: Extent, members: Vec<FileId>, from_compaction: bool) -> u64 {
        debug_assert!(!members.is_empty());
        let id = self.next_id;
        self.next_id += 1;
        for &f in &members {
            let prev = self.file_region.insert(f, id);
            debug_assert!(prev.is_none(), "file {f} already in a set");
        }
        self.stats.sets_created += 1;
        self.stats.sets_live += 1;
        if from_compaction {
            self.stats.compaction_sets += 1;
            self.stats.compaction_set_bytes += ext.len;
            self.stats.compaction_set_files += members.len() as u64;
        }
        self.regions.insert(
            id,
            SetRegion {
                ext,
                live: members.iter().copied().collect(),
                members,
                from_compaction,
            },
        );
        id
    }

    /// Marks a member invalid. Returns the region's extent if the whole
    /// set has faded (the caller then recycles the space).
    pub fn invalidate_file(&mut self, file: FileId) -> Option<Extent> {
        let region_id = self.file_region.remove(&file)?;
        let region = self.regions.get_mut(&region_id).expect("region exists");
        let removed = region.live.remove(&file);
        debug_assert!(removed, "file {file} already invalid");
        if region.live.is_empty() {
            let region = self.regions.remove(&region_id).expect("region exists");
            self.stats.sets_faded += 1;
            self.stats.sets_live -= 1;
            Some(region.ext)
        } else {
            None
        }
    }

    /// The set id a file belongs to, if any.
    pub fn region_of(&self, file: FileId) -> Option<u64> {
        self.file_region.get(&file).copied()
    }

    /// Invalid-member count of the region containing `file` (0 when the
    /// file is in no set).
    pub fn invalid_count_for_file(&self, file: FileId) -> u64 {
        self.region_of(file)
            .and_then(|id| self.regions.get(&id))
            .map_or(0, |r| r.invalid_count() as u64)
    }

    /// The paper's victim priority: total invalid members across the
    /// distinct regions holding the given files.
    ///
    /// Only *nearly-faded* regions (at most one live member remaining)
    /// contribute: compacting such a victim immediately recycles the
    /// whole region. The paper's heuristic must work "implicitly with no
    /// overhead" (SIII-C); letting any invalid member override the
    /// round-robin pointer makes the picker hammer one key range and
    /// inflates WA from ~9.3x to ~19x — see the victim-priority ablation
    /// bench.
    pub fn priority_for(&self, files: &[FileId]) -> u64 {
        let mut seen = BTreeSet::new();
        let mut score = 0u64;
        for &f in files {
            if let Some(id) = self.region_of(f) {
                if seen.insert(id) {
                    let r = &self.regions[&id];
                    let invalid = r.invalid_count() as u64;
                    if r.members.len() > 1 && r.live.len() <= 1 {
                        score += invalid;
                    }
                }
            }
        }
        score
    }

    /// Removes a region wholesale (garbage-collection relocation): all
    /// live members are unmapped and the region counts as faded. Returns
    /// the removed region so the caller can rewrite its live members.
    pub fn take_region(&mut self, id: u64) -> Option<SetRegion> {
        let region = self.regions.remove(&id)?;
        for f in &region.members {
            self.file_region.remove(f);
        }
        self.stats.sets_faded += 1;
        self.stats.sets_live -= 1;
        Some(region)
    }

    /// Live regions, in ascending id order.
    pub fn regions(&self) -> impl Iterator<Item = (&u64, &SetRegion)> {
        self.regions.iter()
    }

    /// Number of live regions.
    pub fn live_count(&self) -> usize {
        self.regions.len()
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> SetStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MB: u64 = 1 << 20;

    #[test]
    fn register_and_fade() {
        let mut r = SetRegistry::new();
        let id = r.register(Extent::new(0, 12 * MB), vec![10, 11, 12], true);
        assert_eq!(r.region_of(11), Some(id));
        assert_eq!(r.live_count(), 1);
        assert_eq!(r.invalidate_file(10), None);
        assert_eq!(r.invalid_count_for_file(11), 1);
        assert_eq!(r.invalidate_file(11), None);
        // Last member fades the whole region.
        assert_eq!(r.invalidate_file(12), Some(Extent::new(0, 12 * MB)));
        assert_eq!(r.live_count(), 0);
        let s = r.stats();
        assert_eq!(s.sets_created, 1);
        assert_eq!(s.sets_faded, 1);
        assert_eq!(s.sets_live, 0);
    }

    #[test]
    fn unknown_file_is_no_op() {
        let mut r = SetRegistry::new();
        assert_eq!(r.invalidate_file(999), None);
        assert_eq!(r.invalid_count_for_file(999), 0);
    }

    #[test]
    fn priority_counts_distinct_regions() {
        let mut r = SetRegistry::new();
        r.register(Extent::new(0, 8 * MB), vec![1, 2], true);
        r.register(Extent::new(8 * MB, 8 * MB), vec![3, 4], true);
        r.invalidate_file(1);
        r.invalidate_file(3);
        // Files 2 and 4 live in regions with one invalid member each;
        // the region of 2 counted once even if mentioned twice.
        assert_eq!(r.priority_for(&[2, 2, 4]), 2);
        assert_eq!(r.priority_for(&[2]), 1);
        assert_eq!(r.priority_for(&[999]), 0);
    }

    #[test]
    fn flush_regions_excluded_from_compaction_set_stats() {
        let mut r = SetRegistry::new();
        r.register(Extent::new(0, 4 * MB), vec![1], false);
        r.register(Extent::new(4 * MB, 12 * MB), vec![2, 3, 4], true);
        let s = r.stats();
        assert_eq!(s.sets_created, 2);
        assert_eq!(s.compaction_sets, 1);
        assert_eq!(s.avg_set_files(), 3.0);
        assert_eq!(s.avg_set_bytes(), 12.0 * MB as f64);
    }
}
