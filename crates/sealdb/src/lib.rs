//! # sealdb — a set-aware key-value store on SMR drives with dynamic bands
//!
//! Reproduction of *"A Set-aware Key-Value Store on Shingled Magnetic
//! Recording Drives with Dynamic Band"* (Yao et al., IPDPS 2018).
//!
//! SEALDB reconciles LSM-tree compactions with shingled-recording
//! constraints through two cooperating techniques:
//!
//! 1. **Sets** (§III-A) — the SSTables written by one compaction are
//!    concatenated into a contiguous on-disk region, so the next
//!    compaction over that key range reads and writes one large
//!    sequential extent instead of ~10 scattered files
//!    ([`set::SetRegistry`], [`policy::SetPolicy`]).
//! 2. **Dynamic bands** (§III-B) — variable-size bands on a raw
//!    host-managed SMR drive, managed by a free-space list that serves
//!    inserts under `S_free ≥ S_req + S_guard` (Eq. 1) and otherwise
//!    appends, eliminating the drive's auxiliary write amplification
//!    ([`placement::DynamicBandAlloc`]).
//!
//! The crate also builds the paper's baselines (LevelDB-on-Ext4,
//! LevelDB + sets, SMRDB) from the same engine via [`config::StoreKind`],
//! so every comparison in the evaluation runs the identical code path
//! except for the design axis under test. Beyond the paper, the store
//! supports pinned-snapshot reads ([`Store::pin`]) and implements the
//! paper's stated future work — fragment garbage collection
//! ([`Store::collect_garbage`]), which relocates nearly-faded sets so
//! free space coalesces back into reusable dynamic bands.
//!
//! ```
//! use sealdb::{StoreConfig, StoreKind};
//!
//! let cfg = StoreConfig::new(StoreKind::SealDb, 64 << 10, 1 << 30);
//! let mut store = cfg.build().unwrap();
//! store.put(b"key", b"value").unwrap();
//! assert_eq!(store.get(b"key").unwrap(), Some(b"value".to_vec()));
//! let snap = store.snapshot();
//! assert_eq!(snap.name, "SEALDB");
//! ```

/// Deliberately-broken entry points for chaos fault injection.
pub mod chaos_knobs;
/// Store construction configuration (drive kind, policy, sizes).
pub mod config;
/// Set-based placement over any allocator, with GC relocation.
pub mod policy;
/// Set-region bookkeeping: registration, fading, victim priority.
pub mod set;
/// The assembled SEALDB store facade.
pub mod store;

pub use config::{StoreConfig, StoreKind};
pub use policy::SetPolicy;
pub use seal_vlog::{ValueLog, VlogParams};
pub use set::{SetRegion, SetRegistry};
pub use store::{GcShipment, MetricsSnapshot, Store, StoreSnapshot};
