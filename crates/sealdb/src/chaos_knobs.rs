//! Deliberately-broken store entry points for the chaos harness.
//!
//! The chaos shrinker demo (ISSUE 10) needs a way to *re-introduce* the
//! PR 8 retire-before-sync bug on demand: free a value-log victim band
//! before the pointer fixups that reference its relocated records are
//! durable. The correct path ([`Store::vlog_gc_step`]) owns that
//! barrier; this module exposes a twin that skips it, so a chaos
//! schedule can select the buggy entry point and the debug-build
//! [`smr_sim::OrderingAuditor`] catches the violation ("were not yet
//! durable"). Nothing in the production crates calls into this module —
//! it exists only for fault-injection tests and the chaos harness, and
//! the one seal-lint `recycle-after-fixups-durable` finding it produces
//! carries an inline waiver for exactly this reason.

use crate::store::Store;
use lsm_core::Result;

impl Store {
    /// One cooperative-GC step with the durability barrier **removed**:
    /// identical to [`Store::vlog_gc_step`] except that when the victim
    /// scan finishes, the victim segment is retired *without* syncing
    /// the WAL first. If the step wrote pointer fixups, they are still
    /// volatile when the band returns to the allocator — a crash in
    /// that window replays pointers into a recycled band.
    ///
    /// In debug builds the ordering auditor panics at the recycle
    /// record whenever fixups are pending, which is the signal the
    /// chaos oracle and the schedule shrinker key on. Release builds
    /// silently carry the latent bug, exactly like the original PR 8
    /// regression.
    pub fn vlog_gc_step_retire_before_sync(&mut self, budget_bytes: u64) -> Result<bool> {
        let Some(relocation) = self.vlog_gc_relocate(budget_bytes)? else {
            return Ok(false);
        };
        if let Some(e) = relocation.error {
            return Err(e);
        }
        let (victim, finished) = (relocation.victim, relocation.finished);
        if finished {
            // BUG (intentional): no sync_wal() and no record_durable()
            // before the retire — the auditor sees the recycle while
            // this step's fixups are still pending.
            if let Some(a) = self.ord_audit.as_mut() {
                a.record_recycle(self.db.clock_ns(), victim);
            }
            let vlog = self.vlog.as_mut().expect("relocate checked vlog");
            self.db
                // seal-lint: allow(recycle-after-fixups-durable)
                .with_fs_and_policy(|fs, policy| vlog.retire_segment(fs, policy, victim))?;
            if vlog.take_dirty() {
                let blob = vlog.checkpoint();
                self.db.commit_aux_state(blob)?;
                if let Some(a) = self.ord_audit.as_mut() {
                    a.record_checkpoint_commit(self.db.clock_ns(), &vlog.segment_ids());
                }
            }
        }
        Ok(true)
    }
}
