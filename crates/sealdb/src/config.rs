//! Store configurations: one factory for every system the paper
//! evaluates, each a (disk layout × allocator × placement policy ×
//! engine options) combination of the workspace's building blocks.
//!
//! | Store | Disk layout | Allocator | Policy |
//! |---|---|---|---|
//! | LevelDB | fixed-band SMR | Ext4-like block groups | per-file + fs journal |
//! | LevelDB+sets (Fig. 14) | fixed-band SMR | Ext4-like block groups | sets + fs journal |
//! | SMRDB | fixed-band SMR | dedicated bands | per-file, 2 levels, band tables |
//! | SEALDB | raw HM-SMR | dynamic bands | sets + priority picking |

use crate::policy::SetPolicy;
use lsm_core::{DbCore, Options, PerFilePolicy, PlacementPolicy, Result};
use placement::{DynamicBandAlloc, Ext4Sim, FixedBandAlloc};
use smr_sim::{Disk, Layout, TimeModel};

/// Which of the paper's systems to build.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StoreKind {
    /// LevelDB 1.19 on Ext4 over a fixed-band SMR drive (the baseline).
    LevelDb,
    /// LevelDB plus sets only (the Fig. 14 contribution ablation).
    LevelDbSets,
    /// SMRDB: two levels, band-sized tables in dedicated bands.
    SmrDb,
    /// SEALDB: sets + dynamic bands on a raw HM-SMR drive.
    SealDb,
}

impl StoreKind {
    /// All four systems, in the paper's presentation order.
    pub const ALL: [StoreKind; 4] = [
        StoreKind::LevelDb,
        StoreKind::LevelDbSets,
        StoreKind::SmrDb,
        StoreKind::SealDb,
    ];

    /// The three systems of the main evaluation (Fig. 8-12).
    pub const MAIN: [StoreKind; 3] = [StoreKind::LevelDb, StoreKind::SmrDb, StoreKind::SealDb];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            StoreKind::LevelDb => "LevelDB",
            StoreKind::LevelDbSets => "LevelDB+sets",
            StoreKind::SmrDb => "SMRDB",
            StoreKind::SealDb => "SEALDB",
        }
    }
}

/// Configuration for building a store.
#[derive(Clone, Debug)]
pub struct StoreConfig {
    /// Which system to build.
    pub kind: StoreKind,
    /// SSTable size — the single scale knob. The paper uses 4 MiB; the
    /// default bench scale is 256 KiB (1/16 linear scale).
    pub sstable_size: u64,
    /// Band size as a multiple of the SSTable size (paper default: 10).
    pub band_ratio: u64,
    /// Disk capacity in bytes.
    pub disk_capacity: u64,
    /// Whether writes go through the WAL.
    pub wal: bool,
    /// Determinism seed.
    pub seed: u64,
    /// Overrides the disk layout chosen by the kind (e.g. Fig. 2 runs
    /// LevelDB on a conventional HDD).
    pub layout_override: Option<Layout>,
    /// Serve mode: writes apply LevelDB-style backpressure (slowdown /
    /// stop / memtable stalls) instead of compacting inline, and the
    /// serving front-end drives compaction via [`Store::compact_step`]
    /// during idle gaps.
    pub deferred_compaction: bool,
    /// Sync every WAL append to the simulated disk (`sync=true`
    /// semantics) instead of buffering `wal_buffer_bytes` chunks.
    /// Replication nodes require this: an acked write must survive the
    /// node's own crash-image reopen, so page-cache-buffered WAL bytes
    /// are not acceptable.
    pub sync_writes: bool,
    /// Instance label for deployments running many stores of one kind
    /// (shards, replicas): namespaces the store's metrics exports so
    /// per-instance registries stay distinguishable when aggregated.
    /// `None` falls back to the kind's display name.
    pub instance: Option<String>,
    /// Key-value separation: when set, values at or above the threshold
    /// live in a band-aligned value log and the LSM stores pointers
    /// (off by default — inline values, byte-identical legacy
    /// behaviour). See [`seal_vlog::ValueLog`].
    pub vlog: Option<seal_vlog::VlogParams>,
}

impl StoreConfig {
    /// A configuration at the given SSTable scale with paper ratios.
    pub fn new(kind: StoreKind, sstable_size: u64, disk_capacity: u64) -> Self {
        StoreConfig {
            kind,
            sstable_size,
            band_ratio: 10,
            disk_capacity,
            wal: true,
            seed: 0x5EA1DB,
            layout_override: None,
            deferred_compaction: false,
            sync_writes: false,
            instance: None,
            vlog: None,
        }
    }

    /// Enables key-value separation with explicit parameters.
    pub fn with_vlog(mut self, params: seal_vlog::VlogParams) -> Self {
        self.vlog = Some(params);
        self
    }

    /// Enables key-value separation with segments sized to one whole
    /// band at this configuration's scale and default thresholds.
    pub fn with_default_vlog(self) -> Self {
        let params = seal_vlog::VlogParams {
            segment_bytes: self.band_size(),
            ..seal_vlog::VlogParams::default()
        };
        self.with_vlog(params)
    }

    /// Same configuration in serve mode (see `deferred_compaction`).
    pub fn serving(mut self) -> Self {
        self.deferred_compaction = true;
        self
    }

    /// Same configuration under an instance label (see
    /// [`StoreConfig::instance`]).
    pub fn with_instance(mut self, label: impl Into<String>) -> Self {
        self.instance = Some(label.into());
        self
    }

    /// Band size in bytes.
    pub fn band_size(&self) -> u64 {
        self.sstable_size * self.band_ratio
    }

    /// Guard-region size (one SSTable, per the paper).
    pub fn guard_bytes(&self) -> u64 {
        self.sstable_size
    }

    /// Ext4 block-group size at this scale (128 MiB with 4 MiB tables).
    pub fn block_group_size(&self) -> u64 {
        self.sstable_size * 32
    }

    fn engine_options(&self) -> Options {
        let mut o = match self.kind {
            StoreKind::SmrDb => smrdb::smrdb_options(self.band_size()),
            _ => Options::scaled(self.sstable_size),
        };
        o.wal_enabled = self.wal;
        o.seed = self.seed;
        o.deferred_compaction = self.deferred_compaction;
        if self.sync_writes {
            o.wal_buffer_bytes = 0;
        }
        o
    }

    fn default_layout(&self) -> Layout {
        match self.kind {
            StoreKind::SealDb => Layout::RawHmSmr {
                guard_bytes: self.guard_bytes(),
            },
            _ => Layout::FixedBand {
                band_size: self.band_size(),
            },
        }
    }

    /// Builds the configured store.
    pub fn build(&self) -> Result<Store> {
        let layout = self
            .layout_override
            .unwrap_or_else(|| self.default_layout());
        let opts = self.engine_options();
        let model = match layout {
            Layout::Hdd => TimeModel::hdd_st1000dm003(self.disk_capacity),
            _ => TimeModel::smr_st5000as0011(self.disk_capacity),
        };
        let disk = Disk::new(self.disk_capacity, layout, model);
        // Data allocators must stay clear of the log zone at the top of
        // the address space, plus one guard window on raw SMR so the last
        // band's damage window cannot reach the zone.
        let data_cap = self.disk_capacity - opts.log_zone_bytes - self.guard_bytes();
        let policy: Box<dyn PlacementPolicy> = match self.kind {
            StoreKind::LevelDb => Box::new(PerFilePolicy::with_fs_journal(Box::new(Ext4Sim::new(
                data_cap,
                self.block_group_size(),
            )))),
            StoreKind::LevelDbSets => Box::new(
                SetPolicy::new(Box::new(Ext4Sim::new(data_cap, self.block_group_size())))
                    .with_fs_journal(),
            ),
            StoreKind::SmrDb => Box::new(PerFilePolicy::new(Box::new(FixedBandAlloc::new(
                data_cap,
                self.band_size(),
            )))),
            StoreKind::SealDb => Box::new(SetPolicy::new(Box::new(DynamicBandAlloc::new(
                data_cap,
                self.sstable_size,
                self.guard_bytes(),
            )))),
        };
        let db = DbCore::open(disk, opts, policy)?;
        let vlog = self.vlog.map(seal_vlog::ValueLog::new);
        let ord_audit = Store::fresh_auditor(&db, vlog.as_ref());
        Ok(Store {
            kind: self.kind,
            instance: self.instance.clone(),
            db,
            vlog,
            ord_audit,
        })
    }
}

pub use crate::store::Store;
