//! Randomized tests: ExtentSet vs a naive bitmap model, and raw-SMR
//! safety. Seeded xorshift generation instead of a property-testing
//! framework so the build needs no external crates and every failure is
//! reproducible from the printed op sequence.

use smr_sim::{Disk, DiskError, Extent, ExtentSet, IoKind, Layout, TimeModel};

const UNIVERSE: u64 = 4096;

struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.max(1))
    }
    fn next_u64(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
}

#[derive(Clone, Debug)]
enum Op {
    Insert(u64, u64),
    Remove(u64, u64),
}

fn random_ops(rng: &mut Rng) -> Vec<Op> {
    let count = 1 + rng.below(119) as usize;
    (0..count)
        .map(|_| {
            let o = rng.below(UNIVERSE);
            let l = (1 + rng.below(255)).min(UNIVERSE - o);
            if rng.below(2) == 0 {
                Op::Insert(o, l)
            } else {
                Op::Remove(o, l)
            }
        })
        .collect()
}

/// ExtentSet agrees with a per-byte boolean model under arbitrary
/// insert/remove sequences, stays coalesced, and keeps its byte count
/// exact.
#[test]
fn extent_set_matches_bitmap() {
    let mut rng = Rng::new(0xE87E);
    for _case in 0..256 {
        let ops = random_ops(&mut rng);
        let mut set = ExtentSet::new();
        let mut model = vec![false; UNIVERSE as usize];
        for op in &ops {
            match *op {
                Op::Insert(o, l) => {
                    set.insert(Extent::new(o, l));
                    for b in &mut model[o as usize..(o + l) as usize] {
                        *b = true;
                    }
                }
                Op::Remove(o, l) => {
                    set.remove(Extent::new(o, l));
                    for b in &mut model[o as usize..(o + l) as usize] {
                        *b = false;
                    }
                }
            }
        }
        let expected: u64 = model.iter().filter(|&&b| b).count() as u64;
        assert_eq!(set.covered_bytes(), expected, "ops {ops:?}");
        // Every stored extent must be fully set in the model, with clear
        // bytes on both flanks (i.e. the set is maximally coalesced).
        let mut prev_end = None;
        for e in set.iter() {
            for i in e.offset..e.end() {
                assert!(model[i as usize], "ops {ops:?}");
            }
            if e.offset > 0 {
                assert!(!model[(e.offset - 1) as usize], "ops {ops:?}");
            }
            if e.end() < UNIVERSE {
                assert!(!model[e.end() as usize], "ops {ops:?}");
            }
            if let Some(p) = prev_end {
                assert!(e.offset > p);
            }
            prev_end = Some(e.end());
        }
        // Spot-check point queries.
        for pos in [0u64, 1, UNIVERSE / 2, UNIVERSE - 1] {
            assert_eq!(set.containing(pos).is_some(), model[pos as usize]);
        }
    }
}

/// On the raw HM-SMR layout, any sequence of writes and frees either
/// faults or leaves every valid byte readable with its exact contents:
/// the simulator never silently corrupts valid data.
#[test]
fn raw_smr_never_corrupts() {
    const BLK: u64 = 1 << 12;
    let mut rng = Rng::new(0x5AFE);
    for _case in 0..256 {
        let count = 1 + rng.below(59) as usize;
        let writes: Vec<(u64, u64, u8)> = (0..count)
            .map(|_| (rng.below(64), 1 + rng.below(7), rng.below(4) as u8))
            .collect();
        let guard = 2 * BLK;
        let cap = 80 * BLK;
        let mut disk = Disk::new(
            cap,
            Layout::RawHmSmr { guard_bytes: guard },
            TimeModel::smr_st5000as0011(cap),
        );
        // Shadow of what is currently valid: offset -> (len, fill byte).
        let mut shadow: Vec<(u64, u64, u8)> = Vec::new();
        for &(blk, len_blks, action) in &writes {
            let off = blk * BLK;
            let len = (len_blks * BLK).min(cap - off);
            if action == 0 && !shadow.is_empty() {
                // Free a random-ish region.
                let idx = (blk as usize) % shadow.len();
                let (o, l, _) = shadow.remove(idx);
                disk.invalidate(Extent::new(o, l));
                continue;
            }
            let fill = action.wrapping_mul(37).wrapping_add(blk as u8);
            let data = vec![fill; len as usize];
            match disk.write(Extent::new(off, len), &data, IoKind::Raw) {
                Ok(()) => {
                    // Must not overlap any shadow entry (the disk enforced it).
                    for &(o, l, _) in &shadow {
                        assert!(
                            !Extent::new(off, len).overlaps(&Extent::new(o, l)),
                            "writes {writes:?}"
                        );
                    }
                    shadow.push((off, len, fill));
                }
                Err(DiskError::WouldOverlapValid { .. })
                | Err(DiskError::GuardViolation { .. }) => {}
                Err(e) => panic!("unexpected error {e:?} for writes {writes:?}"),
            }
        }
        // All surviving shadow regions read back exactly.
        for (o, l, fill) in shadow {
            let back = disk.read(Extent::new(o, l), IoKind::Raw).unwrap();
            assert!(back.iter().all(|&b| b == fill), "writes {writes:?}");
        }
    }
}

/// Fixed-band accounting invariant: device-written bytes are always >=
/// logical bytes, and with strictly appending writes they are equal.
#[test]
fn fixed_band_device_at_least_logical() {
    const BLK: u64 = 1 << 12;
    let mut rng = Rng::new(0xF18A);
    for _case in 0..256 {
        let count = 1 + rng.below(39) as usize;
        let writes: Vec<(u64, u64)> = (0..count)
            .map(|_| (rng.below(32), 1 + rng.below(3)))
            .collect();
        let cap = 64 * BLK;
        let mut disk = Disk::new(
            cap,
            Layout::FixedBand { band_size: 8 * BLK },
            TimeModel::smr_st5000as0011(cap),
        );
        for &(blk, len_blks) in &writes {
            let off = blk * BLK;
            let len = (len_blks * BLK).min(cap - off);
            let data = vec![0xABu8; len as usize];
            disk.write(Extent::new(off, len), &data, IoKind::Raw)
                .unwrap();
        }
        let c = disk.stats().kind(IoKind::Raw);
        assert!(c.device_written >= c.logical_written, "writes {writes:?}");
    }
}

#[test]
fn fixed_band_pure_append_has_awa_one() {
    const BLK: u64 = 1 << 12;
    let cap = 64 * BLK;
    let mut disk = Disk::new(
        cap,
        Layout::FixedBand { band_size: 8 * BLK },
        TimeModel::smr_st5000as0011(cap),
    );
    for i in 0..32u64 {
        disk.write(
            Extent::new(i * BLK, BLK),
            &vec![1u8; BLK as usize],
            IoKind::Flush,
        )
        .unwrap();
    }
    let c = disk.stats().kind(IoKind::Flush);
    assert_eq!(c.device_written, c.logical_written);
    assert_eq!(disk.stats().band_rmw_events, 0);
}
