//! Property tests: ExtentSet vs a naive bitmap model, and raw-SMR safety.

use proptest::prelude::*;
use smr_sim::{Disk, DiskError, Extent, ExtentSet, IoKind, Layout, TimeModel};

const UNIVERSE: u64 = 4096;

#[derive(Clone, Debug)]
enum Op {
    Insert(u64, u64),
    Remove(u64, u64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..UNIVERSE, 1..256u64).prop_map(|(o, l)| Op::Insert(o, l.min(UNIVERSE - o))),
        (0..UNIVERSE, 1..256u64).prop_map(|(o, l)| Op::Remove(o, l.min(UNIVERSE - o))),
    ]
}

proptest! {
    /// ExtentSet agrees with a per-byte boolean model under arbitrary
    /// insert/remove sequences, stays coalesced, and keeps its byte count
    /// exact.
    #[test]
    fn extent_set_matches_bitmap(ops in proptest::collection::vec(op_strategy(), 1..120)) {
        let mut set = ExtentSet::new();
        let mut model = vec![false; UNIVERSE as usize];
        for op in ops {
            match op {
                Op::Insert(o, l) => {
                    set.insert(Extent::new(o, l));
                    for b in &mut model[o as usize..(o + l) as usize] { *b = true; }
                }
                Op::Remove(o, l) => {
                    set.remove(Extent::new(o, l));
                    for b in &mut model[o as usize..(o + l) as usize] { *b = false; }
                }
            }
        }
        let expected: u64 = model.iter().filter(|&&b| b).count() as u64;
        prop_assert_eq!(set.covered_bytes(), expected);
        // Every stored extent must be fully set in the model, with clear
        // bytes on both flanks (i.e. the set is maximally coalesced).
        let mut prev_end = None;
        for e in set.iter() {
            for i in e.offset..e.end() {
                prop_assert!(model[i as usize]);
            }
            if e.offset > 0 {
                prop_assert!(!model[(e.offset - 1) as usize]);
            }
            if e.end() < UNIVERSE {
                prop_assert!(!model[e.end() as usize]);
            }
            if let Some(p) = prev_end {
                prop_assert!(e.offset > p);
            }
            prev_end = Some(e.end());
        }
        // Spot-check point queries.
        for pos in [0u64, 1, UNIVERSE / 2, UNIVERSE - 1] {
            prop_assert_eq!(set.containing(pos).is_some(), model[pos as usize]);
        }
    }

    /// On the raw HM-SMR layout, any sequence of writes and frees either
    /// faults or leaves every valid byte readable with its exact contents:
    /// the simulator never silently corrupts valid data.
    #[test]
    fn raw_smr_never_corrupts(writes in proptest::collection::vec((0..64u64, 1..8u64, 0..4u8), 1..60)) {
        const BLK: u64 = 1 << 12;
        let guard = 2 * BLK;
        let cap = 80 * BLK;
        let mut disk = Disk::new(cap, Layout::RawHmSmr { guard_bytes: guard }, TimeModel::smr_st5000as0011(cap));
        // Shadow of what is currently valid: offset -> (len, fill byte).
        let mut shadow: Vec<(u64, u64, u8)> = Vec::new();
        for (blk, len_blks, action) in writes {
            let off = blk * BLK;
            let len = (len_blks * BLK).min(cap - off);
            if action == 0 && !shadow.is_empty() {
                // Free a random-ish region.
                let idx = (blk as usize) % shadow.len();
                let (o, l, _) = shadow.remove(idx);
                disk.invalidate(Extent::new(o, l));
                continue;
            }
            let fill = action.wrapping_mul(37).wrapping_add(blk as u8);
            let data = vec![fill; len as usize];
            match disk.write(Extent::new(off, len), &data, IoKind::Raw) {
                Ok(()) => {
                    // Must not overlap any shadow entry (the disk enforced it).
                    for &(o, l, _) in &shadow {
                        prop_assert!(!Extent::new(off, len).overlaps(&Extent::new(o, l)));
                    }
                    shadow.push((off, len, fill));
                }
                Err(DiskError::WouldOverlapValid { .. }) | Err(DiskError::GuardViolation { .. }) => {}
                Err(e) => prop_assert!(false, "unexpected error {e:?}"),
            }
        }
        // All surviving shadow regions read back exactly.
        for (o, l, fill) in shadow {
            let back = disk.read(Extent::new(o, l), IoKind::Raw).unwrap();
            prop_assert!(back.iter().all(|&b| b == fill));
        }
    }

    /// Fixed-band accounting invariant: device-written bytes are always >=
    /// logical bytes, and with strictly appending writes they are equal.
    #[test]
    fn fixed_band_device_at_least_logical(writes in proptest::collection::vec((0..32u64, 1..4u64), 1..40)) {
        const BLK: u64 = 1 << 12;
        let cap = 64 * BLK;
        let mut disk = Disk::new(cap, Layout::FixedBand { band_size: 8 * BLK }, TimeModel::smr_st5000as0011(cap));
        for (blk, len_blks) in writes {
            let off = blk * BLK;
            let len = (len_blks * BLK).min(cap - off);
            let data = vec![0xABu8; len as usize];
            disk.write(Extent::new(off, len), &data, IoKind::Raw).unwrap();
        }
        let c = disk.stats().kind(IoKind::Raw);
        prop_assert!(c.device_written >= c.logical_written);
    }
}

#[test]
fn fixed_band_pure_append_has_awa_one() {
    const BLK: u64 = 1 << 12;
    let cap = 64 * BLK;
    let mut disk = Disk::new(
        cap,
        Layout::FixedBand { band_size: 8 * BLK },
        TimeModel::smr_st5000as0011(cap),
    );
    for i in 0..32u64 {
        disk.write(
            Extent::new(i * BLK, BLK),
            &vec![1u8; BLK as usize],
            IoKind::Flush,
        )
        .unwrap();
    }
    let c = disk.stats().kind(IoKind::Flush);
    assert_eq!(c.device_written, c.logical_written);
    assert_eq!(disk.stats().band_rmw_events, 0);
}
