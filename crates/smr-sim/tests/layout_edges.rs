//! Edge-case tests across the disk layouts: HA-SMR reads, trace free
//! events, clock advancement, and boundary conditions.

use smr_sim::{Disk, DiskError, Extent, IoKind, Layout, TimeModel, TraceDir};

const MB: u64 = 1 << 20;

fn model(cap: u64) -> TimeModel {
    TimeModel::smr_st5000as0011(cap)
}

#[test]
fn ha_smr_reads_cover_staged_and_direct_data() {
    let cap = 256 * MB;
    let mut d = Disk::new(
        cap,
        Layout::HaSmr {
            band_size: 4 * MB,
            media_cache_bytes: 8 * MB,
        },
        model(cap),
    );
    let a = vec![1u8; (2 * MB) as usize];
    d.write(Extent::new(0, 2 * MB), &a, IoKind::Flush).unwrap();
    // Out-of-order rewrite goes through the cache; reads must still see
    // the newest bytes.
    let b = vec![2u8; MB as usize];
    d.write(Extent::new(0, MB), &b, IoKind::CompactionWrite)
        .unwrap();
    let back = d.read(Extent::new(0, 2 * MB), IoKind::Get).unwrap();
    assert!(back[..MB as usize].iter().all(|&x| x == 2));
    assert!(back[MB as usize..].iter().all(|&x| x == 1));
}

#[test]
fn ha_smr_spanning_write_across_bands() {
    let cap = 256 * MB;
    let mut d = Disk::new(
        cap,
        Layout::HaSmr {
            band_size: 2 * MB,
            media_cache_bytes: 8 * MB,
        },
        model(cap),
    );
    let payload: Vec<u8> = (0..5 * MB).map(|i| (i % 251) as u8).collect();
    d.write(Extent::new(MB, 5 * MB), &payload, IoKind::Flush)
        .unwrap();
    assert_eq!(
        d.read(Extent::new(MB, 5 * MB), IoKind::Get).unwrap(),
        payload
    );
    assert_eq!(d.bands_touched(Extent::new(MB, 5 * MB)), 3);
}

#[test]
fn trace_records_frees() {
    let cap = 64 * MB;
    let mut d = Disk::new(cap, Layout::Hdd, TimeModel::hdd_st1000dm003(cap));
    d.trace_mut().set_enabled(true);
    d.write(Extent::new(0, MB), &vec![0u8; MB as usize], IoKind::Flush)
        .unwrap();
    d.invalidate(Extent::new(0, MB));
    let events = d.trace().events();
    assert_eq!(events.len(), 2);
    assert_eq!(events[1].dir, TraceDir::Free);
}

#[test]
fn advance_ns_moves_clock_without_io() {
    let cap = 64 * MB;
    let mut d = Disk::new(cap, Layout::Hdd, TimeModel::hdd_st1000dm003(cap));
    let t0 = d.clock_ns();
    d.advance_ns(12345);
    assert_eq!(d.clock_ns(), t0 + 12345);
    assert_eq!(d.stats().logical_written_total(), 0);
}

#[test]
fn valid_tracking_reports_high_water() {
    let cap = 64 * MB;
    let mut d = Disk::new(cap, Layout::RawHmSmr { guard_bytes: MB }, model(cap));
    assert_eq!(d.valid_high_water(), 0);
    d.write(
        Extent::new(10 * MB, MB),
        &vec![1u8; MB as usize],
        IoKind::Raw,
    )
    .unwrap();
    assert_eq!(d.valid_high_water(), 11 * MB);
    assert_eq!(d.valid_bytes(), MB);
    assert_eq!(d.valid_extents().len(), 1);
}

#[test]
fn exact_capacity_boundary_write() {
    let cap = 16 * MB;
    let mut d = Disk::new(cap, Layout::Hdd, TimeModel::hdd_st1000dm003(cap));
    // Write ending exactly at capacity is fine.
    d.write(
        Extent::new(cap - MB, MB),
        &vec![1u8; MB as usize],
        IoKind::Raw,
    )
    .unwrap();
    // One byte more faults.
    let err = d
        .write(
            Extent::new(cap - MB + 1, MB),
            &vec![1u8; MB as usize],
            IoKind::Raw,
        )
        .unwrap_err();
    assert!(matches!(err, DiskError::OutOfRange { .. }));
}

#[test]
fn raw_smr_guard_at_disk_end_is_clipped() {
    // A write whose damage window would extend past the end of the disk
    // must not fault on the clipping itself.
    let cap = 16 * MB;
    let mut d = Disk::new(
        cap,
        Layout::RawHmSmr {
            guard_bytes: 4 * MB,
        },
        model(cap),
    );
    d.write(
        Extent::new(cap - MB, MB),
        &vec![1u8; MB as usize],
        IoKind::Raw,
    )
    .unwrap();
}

#[test]
fn fixed_band_read_spanning_bands() {
    let cap = 64 * MB;
    let mut d = Disk::new(cap, Layout::FixedBand { band_size: 2 * MB }, model(cap));
    let payload: Vec<u8> = (0..6 * MB).map(|i| (i % 251) as u8).collect();
    d.write(Extent::new(0, 6 * MB), &payload, IoKind::Flush)
        .unwrap();
    assert_eq!(
        d.read(Extent::new(0, 6 * MB), IoKind::Scan).unwrap(),
        payload
    );
}

#[test]
fn interleaved_streams_within_segment_budget_stay_sequential() {
    // Two interleaved sequential readers: both should proceed at
    // transfer speed thanks to the segmented read-ahead.
    let cap = 1024 * MB;
    let mut d = Disk::new(cap, Layout::Hdd, TimeModel::hdd_st1000dm003(cap));
    d.write_conventional(
        Extent::new(0, 32 * MB),
        &vec![1u8; (32 * MB) as usize],
        IoKind::Raw,
    )
    .unwrap();
    d.write_conventional(
        Extent::new(512 * MB, 32 * MB),
        &vec![2u8; (32 * MB) as usize],
        IoKind::Raw,
    )
    .unwrap();
    // Prime both streams (first block each pays the seek).
    d.read(Extent::new(0, 4096), IoKind::Scan).unwrap();
    d.read(Extent::new(512 * MB, 4096), IoKind::Scan).unwrap();
    let seeks_before = d.stats().seeks;
    for i in 1..1000u64 {
        d.read(Extent::new(i * 4096, 4096), IoKind::Scan).unwrap();
        d.read(Extent::new(512 * MB + i * 4096, 4096), IoKind::Scan)
            .unwrap();
    }
    assert_eq!(d.stats().seeks, seeks_before, "no further seeks expected");
}
