//! I/O accounting: the paper's Table I quantities.
//!
//! * `WA`  — write amplification of the LSM-tree: bytes written by flushes
//!   and compactions divided by user payload bytes.
//! * `AWA` — auxiliary write amplification of the SMR drive: bytes the
//!   device physically wrote divided by the bytes the host asked it to
//!   write (read-modify-write overhead).
//! * `MWA = WA × AWA` — multiplicative overall write amplification:
//!   device bytes written per user payload byte.

use std::fmt;

/// Classification of each host I/O, used to attribute bytes to the right
/// numerator/denominator of the amplification ratios.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum IoKind {
    /// Write-ahead-log append.
    Wal,
    /// Memtable flush writing an L0 table.
    Flush,
    /// Compaction input read.
    CompactionRead,
    /// Compaction output write.
    CompactionWrite,
    /// Point-lookup read.
    Get,
    /// Range-scan read.
    Scan,
    /// Metadata (manifest, footers read at open, ...).
    Meta,
    /// Anything else (raw device micro-benchmarks).
    Raw,
    /// Garbage-collection relocation traffic (set migration).
    Gc,
    /// Value-log segment append (user values diverted out of the LSM).
    VlogAppend,
    /// Value-log garbage collection: live values relocated to a fresh
    /// segment, plus the reads that found them.
    VlogGc,
}

impl IoKind {
    /// All variants, for iteration in reports.
    pub const ALL: [IoKind; 11] = [
        IoKind::Wal,
        IoKind::Flush,
        IoKind::CompactionRead,
        IoKind::CompactionWrite,
        IoKind::Get,
        IoKind::Scan,
        IoKind::Meta,
        IoKind::Raw,
        IoKind::Gc,
        IoKind::VlogAppend,
        IoKind::VlogGc,
    ];

    fn index(self) -> usize {
        match self {
            IoKind::Wal => 0,
            IoKind::Flush => 1,
            IoKind::CompactionRead => 2,
            IoKind::CompactionWrite => 3,
            IoKind::Get => 4,
            IoKind::Scan => 5,
            IoKind::Meta => 6,
            IoKind::Raw => 7,
            IoKind::Gc => 8,
            IoKind::VlogAppend => 9,
            IoKind::VlogGc => 10,
        }
    }
}

/// Per-kind byte and operation counters.
#[derive(Clone, Copy, Default, Debug)]
pub struct KindCounters {
    /// Bytes the host requested to read.
    pub logical_read: u64,
    /// Bytes the host requested to write.
    pub logical_written: u64,
    /// Bytes the device physically read (includes RMW prefix reads).
    pub device_read: u64,
    /// Bytes the device physically wrote (includes RMW rewrites).
    pub device_written: u64,
    /// Host operations issued.
    pub ops: u64,
    /// Simulated time spent servicing this kind, ns.
    pub time_ns: u64,
}

/// Fault-path activity: injected faults and how the stack above reacted.
/// The disk counts what it injects; the engine counts retries and
/// checksum verdicts, so bench runs can report fault-path coverage.
#[derive(Clone, Copy, Default, Debug)]
pub struct FaultStats {
    /// Writes refused outright by injection (`DiskError::Injected`).
    pub injected_write_failures: u64,
    /// Torn writes: only a prefix of the extent reached the platter.
    pub torn_writes: u64,
    /// Reads whose returned bytes had injected bit-flips.
    pub read_corruptions: u64,
    /// Injected transient read errors (`DiskError::TransientRead`).
    pub transient_read_errors: u64,
    /// Injected persistent read errors (`DiskError::UnrecoverableRead`):
    /// latent sector errors and failed bands.
    pub unrecoverable_reads: u64,
    /// Reads slowed by an injected fail-slow region (the read succeeded
    /// but took its multiplier times the modelled service time).
    pub fail_slow_reads: u64,
    /// Read retries issued by the host after a transient error.
    pub read_retries: u64,
    /// Checksum validation failures detected by the host (WAL fragments,
    /// SSTable blocks, manifest records).
    pub checksum_failures: u64,
}

impl FaultStats {
    /// True if any fault-path counter is non-zero.
    pub fn any(&self) -> bool {
        self.injected_write_failures != 0
            || self.torn_writes != 0
            || self.read_corruptions != 0
            || self.transient_read_errors != 0
            || self.unrecoverable_reads != 0
            || self.fail_slow_reads != 0
            || self.read_retries != 0
            || self.checksum_failures != 0
    }
}

/// Aggregated I/O statistics for one disk.
#[derive(Clone, Default, Debug)]
pub struct IoStats {
    by_kind: [KindCounters; 11],
    /// User payload bytes (key+value sizes of successful puts), reported by
    /// the KV store on top — the denominator of WA and MWA.
    pub user_payload: u64,
    /// Number of accesses that required a mechanical seek.
    pub seeks: u64,
    /// Number of band read-modify-write events (fixed-band layout only).
    pub band_rmw_events: u64,
    /// Fault-injection and recovery-path counters.
    pub faults: FaultStats,
}

impl IoStats {
    /// Creates zeroed statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a host read.
    pub fn record_read(&mut self, kind: IoKind, logical: u64, device: u64, time_ns: u64) {
        let c = &mut self.by_kind[kind.index()];
        c.logical_read += logical;
        c.device_read += device;
        c.ops += 1;
        c.time_ns += time_ns;
    }

    /// Records a host write; `device` includes any RMW rewrite bytes.
    pub fn record_write(&mut self, kind: IoKind, logical: u64, device: u64, time_ns: u64) {
        let c = &mut self.by_kind[kind.index()];
        c.logical_written += logical;
        c.device_written += device;
        c.ops += 1;
        c.time_ns += time_ns;
    }

    /// Adds extra device-side read bytes (RMW prefix reads) to a kind.
    pub fn record_device_read_overhead(&mut self, kind: IoKind, bytes: u64) {
        self.by_kind[kind.index()].device_read += bytes;
    }

    /// Counters for one kind.
    pub fn kind(&self, kind: IoKind) -> KindCounters {
        self.by_kind[kind.index()]
    }

    /// Total bytes the host asked to write, all kinds.
    pub fn logical_written_total(&self) -> u64 {
        self.by_kind.iter().map(|c| c.logical_written).sum()
    }

    /// Total bytes the host asked to read, all kinds.
    pub fn logical_read_total(&self) -> u64 {
        self.by_kind.iter().map(|c| c.logical_read).sum()
    }

    /// Total bytes the device physically wrote, all kinds.
    pub fn device_written_total(&self) -> u64 {
        self.by_kind.iter().map(|c| c.device_written).sum()
    }

    /// Total bytes the device physically read, all kinds.
    pub fn device_read_total(&self) -> u64 {
        self.by_kind.iter().map(|c| c.device_read).sum()
    }

    /// Bytes written by the LSM-tree itself (flush + compaction outputs):
    /// the numerator of the compaction-WA component.
    pub fn lsm_written(&self) -> u64 {
        self.kind(IoKind::Flush).logical_written
            + self.kind(IoKind::CompactionWrite).logical_written
    }

    /// Bytes written to the value log (user-value appends plus GC
    /// relocations): the numerator of the vlog-WA component. Zero when
    /// key-value separation is off.
    pub fn vlog_written(&self) -> u64 {
        self.kind(IoKind::VlogAppend).logical_written + self.kind(IoKind::VlogGc).logical_written
    }

    /// Device bytes attributable to rewrite traffic (flush + compaction +
    /// value-log writes, including RMW overhead): the numerator of AWA
    /// restricted to store-internal write traffic.
    pub fn lsm_device_written(&self) -> u64 {
        self.kind(IoKind::Flush).device_written
            + self.kind(IoKind::CompactionWrite).device_written
            + self.kind(IoKind::VlogAppend).device_written
            + self.kind(IoKind::VlogGc).device_written
    }

    /// Write amplification of the store (Table I: `WA`), covering every
    /// byte the engine rewrites on the user's behalf: flush + compaction
    /// plus value-log appends and GC relocations. With key-value
    /// separation off this equals the compaction-only ratio the paper
    /// reports; with it on, the components are attributable separately
    /// via [`IoStats::wa_compaction`] and [`IoStats::wa_vlog_gc`].
    pub fn wa(&self) -> f64 {
        neutral_ratio(self.lsm_written() + self.vlog_written(), self.user_payload)
    }

    /// Compaction-driven component of WA: flush + compaction bytes per
    /// user payload byte.
    pub fn wa_compaction(&self) -> f64 {
        neutral_ratio(self.lsm_written(), self.user_payload)
    }

    /// Value-log component of WA: vlog append + GC relocation bytes per
    /// user payload byte. Neutral 1.0 under the zero-denominator
    /// convention; ~0 contribution shows up as `wa() ≈ wa_compaction()`.
    pub fn wa_vlog_gc(&self) -> f64 {
        neutral_ratio(self.vlog_written(), self.user_payload)
    }

    /// Auxiliary write amplification of the SMR drive (Table I: `AWA`),
    /// computed over store-internal write traffic as in the paper.
    pub fn awa(&self) -> f64 {
        neutral_ratio(
            self.lsm_device_written(),
            self.lsm_written() + self.vlog_written(),
        )
    }

    /// Multiplicative overall write amplification (Table I: `MWA`).
    pub fn mwa(&self) -> f64 {
        neutral_ratio(self.lsm_device_written(), self.user_payload)
    }
}

/// Ratio with a defined zero-denominator result: the neutral 1.0. A
/// store opened and closed without traffic has nothing to amplify and
/// nothing to miss; reporting 1.0 (rather than 0.0 or NaN) keeps
/// `MWA = WA × AWA` exact, keeps exported metrics CSVs free of NaN, and
/// reads as "perfect" for hit ratios — the convention every exported
/// ratio in the workspace follows (see DESIGN.md, "Ratio conventions").
pub fn neutral_ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        1.0
    } else {
        num as f64 / den as f64
    }
}

impl fmt::Display for IoStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<16} {:>12} {:>12} {:>12} {:>12} {:>8}",
            "kind", "log.read", "log.write", "dev.read", "dev.write", "ops"
        )?;
        for kind in IoKind::ALL {
            let c = self.kind(kind);
            if c.ops == 0 {
                continue;
            }
            writeln!(
                f,
                "{:<16} {:>12} {:>12} {:>12} {:>12} {:>8}",
                format!("{kind:?}"),
                c.logical_read,
                c.logical_written,
                c.device_read,
                c.device_written,
                c.ops
            )?;
        }
        writeln!(
            f,
            "user payload {}  WA {:.2}  AWA {:.2}  MWA {:.2}  seeks {}  band RMW {}",
            self.user_payload,
            self.wa(),
            self.awa(),
            self.mwa(),
            self.seeks,
            self.band_rmw_events
        )?;
        if self.faults.any() {
            let ft = &self.faults;
            writeln!(
                f,
                "faults: injected-write {}  torn {}  read-corrupt {}  transient-read {}  unrecoverable {}  fail-slow {}  retries {}  checksum-fail {}",
                ft.injected_write_failures,
                ft.torn_writes,
                ft.read_corruptions,
                ft.transient_read_errors,
                ft.unrecoverable_reads,
                ft.fail_slow_reads,
                ft.read_retries,
                ft.checksum_failures
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn amplification_math() {
        let mut s = IoStats::new();
        s.user_payload = 100;
        // Flush writes 100 logical / 100 device.
        s.record_write(IoKind::Flush, 100, 100, 1);
        // Compaction writes 900 logical, device amplifies to 4500.
        s.record_write(IoKind::CompactionWrite, 900, 4500, 1);
        assert!((s.wa() - 10.0).abs() < 1e-9);
        assert!((s.awa() - 4.6).abs() < 1e-9);
        assert!((s.mwa() - 46.0).abs() < 1e-9);
        // MWA == WA * AWA by construction.
        assert!((s.mwa() - s.wa() * s.awa()).abs() < 1e-9);
    }

    #[test]
    fn wal_not_counted_in_wa() {
        let mut s = IoStats::new();
        s.user_payload = 100;
        s.record_write(IoKind::Wal, 120, 120, 1);
        s.record_write(IoKind::Flush, 100, 100, 1);
        assert!((s.wa() - 1.0).abs() < 1e-9);
        assert_eq!(s.logical_written_total(), 220);
    }

    #[test]
    fn zero_denominators_yield_neutral_ratio() {
        // Open-and-close with no writes: amplification is defined (1.0),
        // never NaN, and MWA == WA * AWA still holds.
        let s = IoStats::new();
        assert_eq!(s.wa(), 1.0);
        assert_eq!(s.awa(), 1.0);
        assert_eq!(s.mwa(), 1.0);
        assert!(s.wa().is_finite() && s.awa().is_finite() && s.mwa().is_finite());
        assert!((s.mwa() - s.wa() * s.awa()).abs() < 1e-9);
    }

    #[test]
    fn fault_counters_render_only_when_active() {
        let mut s = IoStats::new();
        assert!(!s.faults.any());
        assert!(!format!("{s}").contains("faults:"));
        s.faults.torn_writes += 1;
        s.faults.read_retries += 2;
        assert!(s.faults.any());
        let text = format!("{s}");
        assert!(text.contains("torn 1"));
        assert!(text.contains("retries 2"));
    }

    #[test]
    fn wa_splits_into_compaction_and_vlog_components() {
        let mut s = IoStats::new();
        s.user_payload = 1000;
        s.record_write(IoKind::Flush, 500, 500, 1);
        s.record_write(IoKind::CompactionWrite, 1500, 1500, 1);
        s.record_write(IoKind::VlogAppend, 800, 800, 1);
        s.record_write(IoKind::VlogGc, 200, 200, 1);
        assert!((s.wa_compaction() - 2.0).abs() < 1e-9);
        assert!((s.wa_vlog_gc() - 1.0).abs() < 1e-9);
        assert!((s.wa() - 3.0).abs() < 1e-9);
        // The components sum to the headline number.
        assert!((s.wa() - (s.wa_compaction() + s.wa_vlog_gc())).abs() < 1e-9);
        // MWA == WA * AWA still holds with vlog traffic in both ratios.
        assert!((s.mwa() - s.wa() * s.awa()).abs() < 1e-9);
    }

    #[test]
    fn vlog_off_leaves_wa_unchanged() {
        let mut s = IoStats::new();
        s.user_payload = 100;
        s.record_write(IoKind::Flush, 100, 100, 1);
        s.record_write(IoKind::CompactionWrite, 900, 4500, 1);
        // No vlog traffic: the headline WA equals the compaction-only
        // component, exactly as before key-value separation existed.
        assert_eq!(s.vlog_written(), 0);
        assert!((s.wa() - s.wa_compaction()).abs() < 1e-9);
        assert!((s.wa() - 10.0).abs() < 1e-9);
        assert!((s.awa() - 4.6).abs() < 1e-9);
    }

    #[test]
    fn per_kind_attribution() {
        let mut s = IoStats::new();
        s.record_read(IoKind::Get, 4096, 4096, 15_000_000);
        s.record_read(IoKind::CompactionRead, 1 << 20, 1 << 20, 6_000_000);
        assert_eq!(s.kind(IoKind::Get).ops, 1);
        assert_eq!(s.kind(IoKind::Get).logical_read, 4096);
        assert_eq!(s.logical_read_total(), 4096 + (1 << 20));
    }
}
