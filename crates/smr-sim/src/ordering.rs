//! Debug-build happens-before auditor for durability ordering.
//!
//! [`OrderingAuditor`] is the runtime twin of `seal-lint`'s static
//! ordering rules: the store feeds it one event per durability-relevant
//! effect (checkpoint commit, pointer write, fixup write, sync, fence,
//! repair, recycle, ack) stamped with the simulated clock, and the
//! auditor `debug_assert!`s the happens-before edges the recovery
//! protocol depends on:
//!
//! - a value-log pointer reaches the WAL only for a segment whose
//!   directory entry has been checkpoint-committed;
//! - a GC victim is recycled only after every fixup written for it has
//!   been covered by a durable barrier;
//! - a salvage/rebuild repair touches only fenced (sealed or
//!   quarantined) segments;
//! - a client ack is issued only with zero unsynced WAL bytes.
//!
//! Like [`crate::audit::ShingleAuditor`], it is an independent shadow
//! model: it keeps its own sets rather than peeking at the store's
//! bookkeeping, so a bug in the store cannot hide itself. In release
//! builds the asserts compile out and the store never constructs an
//! auditor, so the checks are free.

use std::collections::{BTreeMap, BTreeSet};

/// Shadow model of the durability-ordering contract, enforced with
/// `debug_assert!` on every recorded event.
#[derive(Clone, Debug, Default)]
pub struct OrderingAuditor {
    /// Segments whose directory entry has been committed to aux state.
    checkpointed: BTreeSet<u64>,
    /// Segments fenced (sealed or quarantined) against new allocation.
    fenced: BTreeSet<u64>,
    /// GC victims with fixup writes not yet covered by a durable
    /// barrier, mapped to the clock of their most recent fixup.
    pending_fixups: BTreeMap<u64, u64>,
    /// Simulated clock of the most recent durable barrier.
    last_durable_ns: u64,
}

impl OrderingAuditor {
    /// Creates an empty auditor (no segments known, nothing pending).
    pub fn new() -> Self {
        OrderingAuditor::default()
    }

    /// Records a checkpoint commit covering `segments`: their directory
    /// entries are now recoverable, so pointers to them may reach the
    /// WAL. A commit is itself a durable barrier.
    pub fn record_checkpoint_commit(&mut self, now_ns: u64, segments: &[u64]) {
        self.checkpointed.extend(segments.iter().copied());
        self.record_durable(now_ns);
    }

    /// Records a value-log pointer entering the WAL, asserting its
    /// segment's directory entry was checkpoint-committed first (the
    /// PR 8 bug class: a crash between the two recovers a live pointer
    /// into an orphaned segment).
    pub fn record_pointer_write(&mut self, now_ns: u64, segment: u64) {
        debug_assert!(
            self.checkpointed.contains(&segment),
            "ordering audit: pointer into segment {segment} reached the WAL at \
             {now_ns}ns before the segment directory was checkpoint-committed"
        );
    }

    /// Records a pointer fixup (GC relocation) for `victim` entering the
    /// WAL. The victim must not be recycled until a durable barrier
    /// covers this write.
    pub fn record_fixup_write(&mut self, now_ns: u64, victim: u64) {
        self.pending_fixups.insert(victim, now_ns);
    }

    /// Records a durable barrier (WAL sync or checkpoint commit): every
    /// fixup written so far is now on stable media.
    pub fn record_durable(&mut self, now_ns: u64) {
        self.last_durable_ns = now_ns;
        self.pending_fixups.clear();
    }

    /// Records `victim` being recycled, asserting no fixup aimed at it
    /// is still undurable (a crash after recycle would recover pointers
    /// into overwritten media).
    pub fn record_recycle(&mut self, now_ns: u64, victim: u64) {
        debug_assert!(
            !self.pending_fixups.contains_key(&victim),
            "ordering audit: segment {victim} recycled at {now_ns}ns while its \
             fixups (last written at {}ns, last durable barrier {}ns) were not \
             yet durable",
            self.pending_fixups.get(&victim).copied().unwrap_or(0),
            self.last_durable_ns
        );
        self.checkpointed.remove(&victim);
        self.fenced.remove(&victim);
        self.pending_fixups.remove(&victim);
    }

    /// Records `segment` being fenced (sealed or quarantined).
    pub fn record_fence(&mut self, _now_ns: u64, segment: u64) {
        self.fenced.insert(segment);
    }

    /// Records a salvage/rebuild repair over `segment`, asserting the
    /// segment was fenced first (an unfenced segment can keep growing
    /// under the repair).
    pub fn record_repair(&mut self, now_ns: u64, segment: u64) {
        debug_assert!(
            self.fenced.contains(&segment),
            "ordering audit: repair of segment {segment} at {now_ns}ns without \
             a preceding fence (seal/quarantine)"
        );
    }

    /// Records a client ack, asserting the WAL had no unsynced bytes
    /// (`pending_bytes` is the store's count at ack time).
    pub fn record_ack(&mut self, now_ns: u64, pending_bytes: u64) {
        debug_assert!(
            pending_bytes == 0,
            "ordering audit: ack at {now_ns}ns with {pending_bytes} unsynced \
             WAL bytes (last durable barrier {}ns)",
            self.last_durable_ns
        );
    }

    /// Resets the model after recovery: `segments` are the segments the
    /// recovered directory knows (checkpointed by construction); nothing
    /// is pending or fenced.
    pub fn reset_recovered(&mut self, now_ns: u64, segments: &[u64]) {
        self.checkpointed = segments.iter().copied().collect();
        self.fenced.clear();
        self.pending_fixups.clear();
        self.last_durable_ns = now_ns;
    }

    /// Number of GC victims with undurable fixups (observability hook).
    pub fn pending_victims(&self) -> usize {
        self.pending_fixups.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn legal_gc_cycle_is_silent() {
        let mut a = OrderingAuditor::new();
        a.record_checkpoint_commit(10, &[1, 2]);
        a.record_pointer_write(11, 1);
        a.record_fixup_write(12, 2);
        a.record_durable(13);
        a.record_recycle(14, 2);
        a.record_fence(15, 1);
        a.record_repair(16, 1);
        a.record_ack(17, 0);
        assert_eq!(a.pending_victims(), 0);
    }

    #[test]
    fn recovery_reset_reseeds_the_directory() {
        let mut a = OrderingAuditor::new();
        a.record_fixup_write(5, 9);
        a.reset_recovered(20, &[3]);
        assert_eq!(a.pending_victims(), 0);
        a.record_pointer_write(21, 3);
    }

    #[test]
    fn checkpoint_commit_is_a_durable_barrier() {
        let mut a = OrderingAuditor::new();
        a.record_fixup_write(5, 7);
        a.record_checkpoint_commit(6, &[]);
        a.record_recycle(7, 7);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "before the segment directory was checkpoint-committed")]
    fn pointer_before_checkpoint_panics_in_debug() {
        let mut a = OrderingAuditor::new();
        a.record_pointer_write(1, 42);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "were not yet durable")]
    fn recycle_with_undurable_fixups_panics_in_debug() {
        let mut a = OrderingAuditor::new();
        a.record_checkpoint_commit(1, &[5]);
        a.record_fixup_write(2, 5);
        a.record_recycle(3, 5);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "without a preceding fence")]
    fn repair_without_fence_panics_in_debug() {
        let mut a = OrderingAuditor::new();
        a.record_repair(1, 8);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "unsynced")]
    fn ack_with_pending_wal_panics_in_debug() {
        let mut a = OrderingAuditor::new();
        a.record_ack(1, 512);
    }

    #[cfg(not(debug_assertions))]
    #[test]
    fn violations_are_free_in_release() {
        let mut a = OrderingAuditor::new();
        a.record_pointer_write(1, 42);
        a.record_fixup_write(2, 5);
        a.record_recycle(3, 5);
        a.record_repair(4, 8);
        a.record_ack(5, 512);
    }
}
