//! Mechanical service-time model.
//!
//! Every disk access advances a simulated clock by
//! `seek(distance) + rotational latency + bytes / streaming rate`.
//! The default parameter sets are calibrated against Table II of the paper
//! (Seagate ST1000DM003 HDD and ST5000AS0011 SMR drive):
//!
//! * sequential read/write throughput equals the table's MB/s directly,
//! * uniform random 4 KiB reads land at ≈66 IOPS (paper: 64–70),
//! * random 4 KiB writes hit the drive write cache (`write_cache_ns`),
//!   giving ≈140 IOPS on the HDD; on the fixed-band SMR layout the
//!   band read-modify-write charge added by [`crate::disk::Disk`]
//!   produces the paper's bimodal 5–140 IOPS range.

/// Parameters of the mechanical model. All times in nanoseconds, rates in
/// bytes per second.
#[derive(Clone, Copy, Debug)]
pub struct TimeModel {
    /// Total addressable capacity, used to normalise seek distance.
    pub capacity: u64,
    /// Track-to-track (minimum) seek time.
    pub min_seek_ns: u64,
    /// Full-stroke (maximum) seek time.
    pub max_seek_ns: u64,
    /// Average rotational latency added to every non-sequential access
    /// (half a revolution; 4.17 ms at 7200 rpm).
    pub rot_latency_ns: u64,
    /// Streaming read rate, bytes/second.
    pub read_bps: u64,
    /// Streaming write rate, bytes/second.
    pub write_bps: u64,
    /// If set, a non-sequential *write* is absorbed by the drive's
    /// write-back cache: it costs this flat latency instead of
    /// seek + rotation. Reads always pay the mechanical cost.
    pub write_cache_ns: Option<u64>,
}

impl TimeModel {
    /// Parameters matching the paper's 1 TB Seagate ST1000DM003 HDD
    /// (Table II: 169 MB/s seq read, 155 MB/s seq write, 64 IOPS random
    /// read, 143 IOPS random write).
    pub fn hdd_st1000dm003(capacity: u64) -> Self {
        TimeModel {
            capacity,
            min_seek_ns: 500_000,
            max_seek_ns: 16_000_000,
            rot_latency_ns: 4_170_000,
            read_bps: 169_000_000,
            write_bps: 155_000_000,
            write_cache_ns: Some(6_900_000),
        }
    }

    /// Parameters matching the Seagate ST5000AS0011 SMR drive
    /// (Table II: 165 MB/s seq read, 148 MB/s seq write, 70 IOPS random
    /// read; random writes range 5–140 IOPS depending on band state —
    /// the low end emerges from the band RMW charge, not from this model).
    pub fn smr_st5000as0011(capacity: u64) -> Self {
        TimeModel {
            capacity,
            min_seek_ns: 500_000,
            max_seek_ns: 14_000_000,
            rot_latency_ns: 4_170_000,
            read_bps: 165_000_000,
            write_bps: 148_000_000,
            write_cache_ns: Some(7_000_000),
        }
    }

    /// Seek time between two byte positions. Zero when the head is already
    /// there; otherwise the classical `min + (max-min) * sqrt(d/capacity)`
    /// short-stroke model.
    pub fn seek_ns(&self, from: u64, to: u64) -> u64 {
        if from == to {
            return 0;
        }
        let d = from.abs_diff(to) as f64 / self.capacity.max(1) as f64;
        self.min_seek_ns + ((self.max_seek_ns - self.min_seek_ns) as f64 * d.sqrt()) as u64
    }

    /// Pure transfer time for `len` bytes at `bps` bytes/second.
    pub fn xfer_ns(len: u64, bps: u64) -> u64 {
        // len / bps seconds, in ns, rounded up.
        ((len as u128 * 1_000_000_000).div_ceil(bps.max(1) as u128)) as u64
    }

    /// Service time for a read of `len` bytes at `offset` given the current
    /// head position. Returns `(time_ns, new_head_position)`.
    pub fn read_time(&self, head: u64, offset: u64, len: u64) -> (u64, u64) {
        let mut t = 0;
        if head != offset {
            t += self.seek_ns(head, offset) + self.rot_latency_ns;
        }
        t += Self::xfer_ns(len, self.read_bps);
        (t, offset + len)
    }

    /// Service time for a write of `len` bytes at `offset` given the current
    /// head position. Returns `(time_ns, new_head_position)`.
    pub fn write_time(&self, head: u64, offset: u64, len: u64) -> (u64, u64) {
        let mut t = 0;
        if head != offset {
            t += match self.write_cache_ns {
                Some(c) => c,
                None => self.seek_ns(head, offset) + self.rot_latency_ns,
            };
        }
        t += Self::xfer_ns(len, self.write_bps);
        (t, offset + len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GB: u64 = 1 << 30;

    #[test]
    fn sequential_transfer_matches_rate() {
        let m = TimeModel::hdd_st1000dm003(1000 * GB);
        // 169 MB in one second.
        let t = TimeModel::xfer_ns(169_000_000, m.read_bps);
        assert_eq!(t, 1_000_000_000);
    }

    #[test]
    fn seek_zero_when_sequential() {
        let m = TimeModel::hdd_st1000dm003(1000 * GB);
        assert_eq!(m.seek_ns(42, 42), 0);
        let (t, pos) = m.read_time(100, 100, 1000);
        assert_eq!(pos, 1100);
        assert_eq!(t, TimeModel::xfer_ns(1000, m.read_bps));
    }

    #[test]
    fn seek_grows_with_distance() {
        let m = TimeModel::hdd_st1000dm003(1000 * GB);
        let near = m.seek_ns(0, GB);
        let far = m.seek_ns(0, 900 * GB);
        assert!(near < far);
        assert!(near >= m.min_seek_ns);
        assert!(far <= m.max_seek_ns);
    }

    #[test]
    fn random_read_iops_in_table2_range() {
        // Uniform random 4 KiB reads over the whole disk should land in
        // the 60-75 IOPS window of Table II.
        let m = TimeModel::hdd_st1000dm003(1000 * GB);
        let mut total = 0u64;
        let n = 1000u64;
        let mut head = 0;
        let mut state = 0x9E3779B97F4A7C15u64;
        for _ in 0..n {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let off = state % (1000 * GB);
            let (t, p) = m.read_time(head, off, 4096);
            total += t;
            head = p;
        }
        let iops = n as f64 / (total as f64 / 1e9);
        assert!((55.0..80.0).contains(&iops), "iops = {iops}");
    }

    #[test]
    fn random_write_iops_hits_write_cache() {
        let m = TimeModel::hdd_st1000dm003(1000 * GB);
        let (t, _) = m.write_time(0, 500 * GB, 4096);
        let iops = 1e9 / t as f64;
        assert!((120.0..160.0).contains(&iops), "iops = {iops}");
    }
}
