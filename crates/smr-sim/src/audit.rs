//! Debug-build shingle auditor for the raw HM-SMR layout.
//!
//! [`ShingleAuditor`] is an *independent* shadow model of which byte
//! ranges hold valid data. It deliberately does not reuse
//! [`crate::extent::ExtentSet`] — the whole point is to double-check the
//! disk's own bookkeeping with a second implementation, so a bug in the
//! interval set cannot hide itself.
//!
//! The disk feeds the auditor every *accepted* raw write (after its own
//! checks pass) and every invalidation. If an accepted write overlaps
//! valid data, or its shingle-direction guard window would damage valid
//! data, the auditor's `debug_assert!` fires. In release builds the
//! asserts compile out and the disk never constructs an auditor, so the
//! check is free.

use crate::extent::Extent;

/// Shadow model of valid data on a raw HM-SMR disk, enforcing the
/// Caveat-Scriptor contract (no overlap of valid data; no valid data in
/// the `guard_bytes` damage window past a write) with `debug_assert!`.
#[derive(Clone, Debug)]
pub struct ShingleAuditor {
    /// Valid half-open ranges `(start, end)`, sorted, pairwise disjoint.
    ranges: Vec<(u64, u64)>,
    guard_bytes: u64,
    capacity: u64,
}

impl ShingleAuditor {
    /// Creates an auditor for a disk of `capacity` bytes whose writes
    /// damage `guard_bytes` in the shingle direction.
    pub fn new(capacity: u64, guard_bytes: u64) -> Self {
        ShingleAuditor {
            ranges: Vec::new(),
            guard_bytes,
            capacity,
        }
    }

    /// First valid range intersecting `[start, end)`, if any.
    fn first_overlap(&self, start: u64, end: u64) -> Option<(u64, u64)> {
        // Linear scan: the auditor trades speed for obviousness, and it
        // only exists in debug builds.
        self.ranges
            .iter()
            .copied()
            .find(|&(s, e)| s < end && start < e)
    }

    /// Records a write the disk accepted, asserting the shingle contract.
    pub fn record_write(&mut self, ext: Extent) {
        let (start, end) = (ext.offset, ext.end());
        debug_assert!(
            self.first_overlap(start, end).is_none(),
            "shingle audit: accepted raw write [{start}, {end}) overlaps valid {:?}",
            self.first_overlap(start, end)
        );
        let guard_end = end.saturating_add(self.guard_bytes).min(self.capacity);
        debug_assert!(
            self.first_overlap(end, guard_end).is_none(),
            "shingle audit: accepted raw write [{start}, {end}) has valid data {:?} \
             inside its {}-byte guard window",
            self.first_overlap(end, guard_end),
            self.guard_bytes
        );
        self.insert(start, end);
    }

    /// Records an invalidation (trim / region fade).
    pub fn record_invalidate(&mut self, ext: Extent) {
        let (start, end) = (ext.offset, ext.end());
        let mut next = Vec::with_capacity(self.ranges.len() + 1);
        for &(s, e) in &self.ranges {
            if e <= start || end <= s {
                next.push((s, e));
                continue;
            }
            if s < start {
                next.push((s, start));
            }
            if end < e {
                next.push((end, e));
            }
        }
        self.ranges = next;
    }

    /// Resets the shadow model to exactly `ranges` (used after a crash
    /// restore, where the disk's valid set is rolled back wholesale).
    pub fn reset_to(&mut self, ranges: impl Iterator<Item = Extent>) {
        self.ranges = ranges.map(|e| (e.offset, e.end())).collect();
        self.ranges.sort_unstable();
    }

    /// Total valid bytes tracked by the shadow model.
    pub fn valid_bytes(&self) -> u64 {
        self.ranges.iter().map(|&(s, e)| e - s).sum()
    }

    fn insert(&mut self, start: u64, end: u64) {
        if start >= end {
            return;
        }
        // Merge with adjacent/overlapping neighbours to keep the list
        // canonical even if an assert was ignored (release builds).
        let mut lo = start;
        let mut hi = end;
        self.ranges.retain(|&(s, e)| {
            if s <= hi && lo <= e {
                lo = lo.min(s);
                hi = hi.max(e);
                false
            } else {
                true
            }
        });
        let at = self.ranges.partition_point(|&(s, _)| s < lo);
        self.ranges.insert(at, (lo, hi));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn legal_sequence_is_silent() {
        let mut a = ShingleAuditor::new(1 << 20, 4096);
        a.record_write(Extent::new(0, 1000));
        // Past the first write's guard shadow is fine; earlier free space
        // is fine as long as *its* guard window stays clear.
        a.record_write(Extent::new(8192, 1000));
        assert_eq!(a.valid_bytes(), 2000);
        a.record_invalidate(Extent::new(0, 1000));
        assert_eq!(a.valid_bytes(), 1000);
        // Space reclaimed: rewriting it is legal again (guard window of
        // [0,1000) is [1000,5096), which holds no valid data).
        a.record_write(Extent::new(0, 1000));
        assert_eq!(a.valid_bytes(), 2000);
    }

    #[test]
    fn partial_invalidate_splits_ranges() {
        let mut a = ShingleAuditor::new(1 << 20, 0);
        a.record_write(Extent::new(0, 3000));
        a.record_invalidate(Extent::new(1000, 1000));
        assert_eq!(a.valid_bytes(), 2000);
        // The hole is writable again.
        a.record_write(Extent::new(1000, 1000));
        assert_eq!(a.valid_bytes(), 3000);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "shingle audit")]
    fn overlap_panics_in_debug() {
        let mut a = ShingleAuditor::new(1 << 20, 4096);
        a.record_write(Extent::new(0, 1000));
        a.record_write(Extent::new(500, 1000));
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "guard window")]
    fn guard_violation_panics_in_debug() {
        let mut a = ShingleAuditor::new(1 << 20, 4096);
        a.record_write(Extent::new(8192, 1000));
        // Ends at 5000; guard window [5000, 9096) covers the valid data.
        a.record_write(Extent::new(4000, 1000));
    }

    #[cfg(not(debug_assertions))]
    #[test]
    fn violations_are_free_in_release() {
        // The same sequences that panic under debug_assertions compile to
        // plain bookkeeping in release builds.
        let mut a = ShingleAuditor::new(1 << 20, 4096);
        a.record_write(Extent::new(0, 1000));
        a.record_write(Extent::new(500, 1000));
        let mut b = ShingleAuditor::new(1 << 20, 4096);
        b.record_write(Extent::new(8192, 1000));
        b.record_write(Extent::new(4000, 1000));
        assert_eq!(a.valid_bytes(), 1500);
    }
}
