//! obs — unified observability: metrics registry, latency histograms,
//! event tracing.
//!
//! Every store owns exactly one [`Obs`] embedded in its [`crate::Disk`], so
//! all layers (device, WAL, LSM, caches, placement) account into the same
//! clock-coherent sink. Three primitives:
//!
//! * [`MetricsRegistry`] — named counters and gauges keyed by
//!   ([`ObsLayer`], name). BTreeMap-backed so iteration (and therefore JSON
//!   and CSV export) is deterministic.
//! * [`LatencyHistogram`] — fixed geometric buckets over simulated
//!   nanoseconds. Percentiles are a pure function of the recorded counts;
//!   no wall-clock time is ever involved, so two same-seed runs produce
//!   byte-identical exports.
//! * [`EventTracer`] — bounded ring buffer of timestamped
//!   flush/compaction/band/fault events with a dropped-event counter.
//!
//! Export is hand-rolled JSON/CSV (the workspace has no external
//! dependencies); all floats are formatted with fixed precision and are
//! finite by construction.

use std::collections::{BTreeMap, VecDeque};
use std::fmt::Write as _;

/// Layer that produced a metric or event. Ordered so registry iteration
/// groups metrics bottom-up (device first).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ObsLayer {
    /// SMR disk simulator: physical I/O, RMW, media cache, faults.
    Device,
    /// Write-ahead log.
    Wal,
    /// LSM engine: flushes, compactions, per-level byte flow.
    Lsm,
    /// Block and table caches.
    Cache,
    /// Placement policies and band allocators.
    Placement,
    /// Store facade: end-to-end operation latencies.
    Store,
    /// Serving front-end: request queueing, group commit, admission.
    Frontend,
    /// Replication: WAL shipping, failover, catch-up streaming.
    Replication,
    /// Cluster router: shard placement, cross-shard queueing, migration.
    Router,
    /// Value log: segment appends, hot/cold grouping, cooperative GC.
    ValueLog,
}

impl ObsLayer {
    /// Stable lowercase name used in export keys.
    pub fn name(self) -> &'static str {
        match self {
            ObsLayer::Device => "device",
            ObsLayer::Wal => "wal",
            ObsLayer::Lsm => "lsm",
            ObsLayer::Cache => "cache",
            ObsLayer::Placement => "placement",
            ObsLayer::Store => "store",
            ObsLayer::Frontend => "frontend",
            ObsLayer::Replication => "replication",
            ObsLayer::Router => "router",
            ObsLayer::ValueLog => "vlog",
        }
    }
}

/// What happened, for trace events. `a`/`b` operands of [`ObsEvent`] are
/// kind-specific and documented per variant.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ObsEventKind {
    /// Memtable flush completed. a = output bytes, b = output file id.
    Flush,
    /// Compaction completed. a = source level, b = output bytes.
    Compaction,
    /// Trivial move (no data rewrite). a = source level, b = bytes moved.
    TrivialMove,
    /// WAL rotated to a new log file. a = new log id, b = old log id.
    WalRotate,
    /// Allocator placed an extent inside an existing free hole (dynamic
    /// band insert, Eq. 1). a = offset, b = length.
    BandAllocate,
    /// Allocator appended an extent at the frontier. a = offset, b = length.
    BandAppend,
    /// Allocator recycled a freed extent (hole created / coalesced).
    /// a = offset, b = length.
    BandRecycle,
    /// Fixed-band read-modify-write. a = band id, b = bytes rewritten.
    BandRmw,
    /// Host-aware media-cache cleaning pass. a = dirty bands cleaned,
    /// b = bytes rewritten.
    MediaCacheClean,
    /// Injected torn write. a = offset, b = bytes that reached the platter.
    TornWrite,
    /// Injected read corruption. a = offset, b = length.
    ReadCorruption,
    /// Injected transient read error. a = offset, b = length.
    TransientReadError,
    /// Injected persistent read error (latent sector error or failed
    /// band). a = offset, b = length.
    UnrecoverableRead,
    /// Read slowed by an injected fail-slow region. a = offset,
    /// b = latency multiplier applied.
    FailSlowRead,
    /// Scrub repaired a damaged file (bit-corrected blocks and/or a
    /// targeted re-materialising compaction). a = file id, b = blocks
    /// that needed correction.
    ScrubRepair,
    /// A file left the version as unreadable. a = file id, b = level.
    FileQuarantined,
    /// Placement fenced a band hosting a persistent fault off the free
    /// list. a = band offset, b = band length.
    BandQuarantine,
    /// Injected outright write failure. a = offset, b = length.
    InjectedWriteFailure,
    /// Garbage collection relocated a set. a = set id, b = bytes moved.
    GcRelocate,
    /// Write delayed by the L0 slowdown trigger. a = L0 file count,
    /// b = penalty ns.
    WriteSlowdown,
    /// Write stopped at the L0 stop trigger until compaction caught up.
    /// a = L0 file count at entry, b = stall ns.
    WriteStop,
    /// Write waited for a full memtable to flush. a = L0 file count after
    /// the flush, b = stall ns.
    MemtableStall,
    /// Value-log segment opened (band-sized extent allocated and
    /// registered). a = segment id, b = capacity bytes.
    VlogSegmentOpen,
    /// Value-log segment sealed (append head moved on). a = segment id,
    /// b = used bytes.
    VlogSegmentSeal,
    /// Value-log GC pass relocated live values out of a victim segment.
    /// a = victim segment id, b = live bytes relocated.
    VlogGcRelocate,
    /// Value-log segment dropped and its band returned to the allocator.
    /// a = segment id, b = bytes reclaimed.
    VlogSegmentDrop,
}

impl ObsEventKind {
    /// Stable kebab-case name used in export.
    pub fn name(self) -> &'static str {
        match self {
            ObsEventKind::Flush => "flush",
            ObsEventKind::Compaction => "compaction",
            ObsEventKind::TrivialMove => "trivial-move",
            ObsEventKind::WalRotate => "wal-rotate",
            ObsEventKind::BandAllocate => "band-allocate",
            ObsEventKind::BandAppend => "band-append",
            ObsEventKind::BandRecycle => "band-recycle",
            ObsEventKind::BandRmw => "band-rmw",
            ObsEventKind::MediaCacheClean => "media-cache-clean",
            ObsEventKind::TornWrite => "torn-write",
            ObsEventKind::ReadCorruption => "read-corruption",
            ObsEventKind::TransientReadError => "transient-read-error",
            ObsEventKind::UnrecoverableRead => "unrecoverable-read",
            ObsEventKind::FailSlowRead => "fail-slow-read",
            ObsEventKind::ScrubRepair => "scrub-repair",
            ObsEventKind::FileQuarantined => "file-quarantined",
            ObsEventKind::BandQuarantine => "band-quarantine",
            ObsEventKind::InjectedWriteFailure => "injected-write-failure",
            ObsEventKind::GcRelocate => "gc-relocate",
            ObsEventKind::WriteSlowdown => "write-slowdown",
            ObsEventKind::WriteStop => "write-stop",
            ObsEventKind::MemtableStall => "memtable-stall",
            ObsEventKind::VlogSegmentOpen => "vlog-segment-open",
            ObsEventKind::VlogSegmentSeal => "vlog-segment-seal",
            ObsEventKind::VlogGcRelocate => "vlog-gc-relocate",
            ObsEventKind::VlogSegmentDrop => "vlog-segment-drop",
        }
    }
}

/// One timestamped trace event. Timestamps come from the simulated disk
/// clock, never from wall time.
#[derive(Clone, Copy, Debug)]
pub struct ObsEvent {
    /// Simulated time the event was recorded, ns.
    pub t_ns: u64,
    /// Layer that emitted the event.
    pub layer: ObsLayer,
    /// Event kind; see [`ObsEventKind`] for `a`/`b` meanings.
    pub kind: ObsEventKind,
    /// First kind-specific operand.
    pub a: u64,
    /// Second kind-specific operand.
    pub b: u64,
}

/// Bounded ring buffer of trace events. When full, the oldest event is
/// evicted and `dropped` is incremented, so the tail of history is always
/// retained and loss is visible.
#[derive(Clone, Debug)]
pub struct EventTracer {
    buf: VecDeque<ObsEvent>,
    cap: usize,
    recorded: u64,
    dropped: u64,
}

/// Default ring capacity: enough for the tail of a bench run without
/// letting traces dominate snapshot memory.
pub const DEFAULT_TRACE_CAP: usize = 4096;

impl Default for EventTracer {
    fn default() -> Self {
        Self::new(DEFAULT_TRACE_CAP)
    }
}

impl EventTracer {
    /// Creates a tracer retaining at most `cap` events.
    pub fn new(cap: usize) -> Self {
        Self {
            buf: VecDeque::with_capacity(cap.min(DEFAULT_TRACE_CAP)),
            cap: cap.max(1),
            recorded: 0,
            dropped: 0,
        }
    }

    /// Appends an event, evicting the oldest if the ring is full.
    pub fn record(&mut self, ev: ObsEvent) {
        if self.buf.len() == self.cap {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(ev);
        self.recorded += 1;
    }

    /// Events currently retained, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &ObsEvent> {
        self.buf.iter()
    }

    /// Total events ever recorded.
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Retained event count.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if no events are retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// Number of histogram buckets. Bucket `i < HIST_BUCKETS - 1` covers
/// `[upper(i-1), upper(i))` ns with `upper(i) = 1024 << i`; the last bucket
/// is unbounded. The span is 1 µs to ~9.6 hours of simulated time.
pub const HIST_BUCKETS: usize = 36;

/// Fixed-bucket latency histogram over simulated nanoseconds.
///
/// Buckets are geometric (powers of two starting at 1024 ns), so bucket
/// boundaries are identical across runs and builds. A reported quantile is
/// the upper bound of the bucket in which the requested rank falls, clamped
/// to the exact observed maximum — deterministic and at most one bucket
/// width (2×) above the true value.
#[derive(Clone, Debug)]
pub struct LatencyHistogram {
    counts: [u64; HIST_BUCKETS],
    count: u64,
    sum_ns: u64,
    max_ns: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self {
            counts: [0; HIST_BUCKETS],
            count: 0,
            sum_ns: 0,
            max_ns: 0,
        }
    }

    /// Upper bound (exclusive) of bucket `i`; the last bucket has no bound.
    pub fn bucket_upper_bound(i: usize) -> u64 {
        if i >= HIST_BUCKETS - 1 {
            u64::MAX
        } else {
            1024u64 << i
        }
    }

    /// Index of the bucket covering `ns`: the first bucket whose upper
    /// bound exceeds the value.
    pub fn bucket_index(ns: u64) -> usize {
        for i in 0..HIST_BUCKETS - 1 {
            if ns < Self::bucket_upper_bound(i) {
                return i;
            }
        }
        HIST_BUCKETS - 1
    }

    /// Records one sample.
    pub fn record(&mut self, ns: u64) {
        self.counts[Self::bucket_index(ns)] += 1;
        self.count += 1;
        self.sum_ns = self.sum_ns.saturating_add(ns);
        self.max_ns = self.max_ns.max(ns);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples, ns (saturating).
    pub fn sum_ns(&self) -> u64 {
        self.sum_ns
    }

    /// Exact maximum sample, ns. 0 when empty.
    pub fn max_ns(&self) -> u64 {
        self.max_ns
    }

    /// Mean sample, ns. 0.0 when empty (never NaN).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ns as f64 / self.count as f64
        }
    }

    /// Raw bucket counts.
    pub fn bucket_counts(&self) -> &[u64; HIST_BUCKETS] {
        &self.counts
    }

    /// Quantile estimate: upper bound of the bucket holding the sample of
    /// rank `ceil(q * count)`, clamped to the observed maximum. Returns 0
    /// when empty. `q` is clamped to [0, 1].
    pub fn quantile_ns(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::bucket_upper_bound(i).min(self.max_ns);
            }
        }
        self.max_ns
    }

    /// Median estimate, ns.
    pub fn p50(&self) -> u64 {
        self.quantile_ns(0.50)
    }

    /// 95th percentile estimate, ns.
    pub fn p95(&self) -> u64 {
        self.quantile_ns(0.95)
    }

    /// 99th percentile estimate, ns.
    pub fn p99(&self) -> u64 {
        self.quantile_ns(0.99)
    }
}

/// Named counters and gauges, keyed by layer. BTreeMap keys give
/// deterministic iteration order for export.
#[derive(Clone, Debug, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<(ObsLayer, String), u64>,
    gauges: BTreeMap<(ObsLayer, String), f64>,
}

impl MetricsRegistry {
    /// Adds `delta` to a counter, creating it at zero first if absent.
    pub fn counter_add(&mut self, layer: ObsLayer, name: &str, delta: u64) {
        *self.counters.entry((layer, name.to_string())).or_insert(0) += delta;
    }

    /// Current counter value (0 if never touched).
    pub fn counter(&self, layer: ObsLayer, name: &str) -> u64 {
        self.counters
            .get(&(layer, name.to_string()))
            .copied()
            .unwrap_or(0)
    }

    /// Sets a gauge. Non-finite values are clamped to 0.0 so NaN can never
    /// reach an export.
    pub fn gauge_set(&mut self, layer: ObsLayer, name: &str, value: f64) {
        let v = if value.is_finite() { value } else { 0.0 };
        self.gauges.insert((layer, name.to_string()), v);
    }

    /// Current gauge value (0.0 if never set).
    pub fn gauge(&self, layer: ObsLayer, name: &str) -> f64 {
        self.gauges
            .get(&(layer, name.to_string()))
            .copied()
            .unwrap_or(0.0)
    }

    /// Counters in deterministic (layer, name) order.
    pub fn counters(&self) -> impl Iterator<Item = (&(ObsLayer, String), &u64)> {
        self.counters.iter()
    }

    /// Gauges in deterministic (layer, name) order.
    pub fn gauges(&self) -> impl Iterator<Item = (&(ObsLayer, String), &f64)> {
        self.gauges.iter()
    }
}

/// The per-store observability bundle: registry + histograms + tracer.
#[derive(Clone, Debug, Default)]
pub struct Obs {
    /// Counter/gauge registry.
    pub registry: MetricsRegistry,
    hists: BTreeMap<(ObsLayer, String), LatencyHistogram>,
    /// Event ring buffer.
    pub tracer: EventTracer,
}

impl Obs {
    /// Creates an empty bundle with the default trace capacity.
    pub fn new() -> Self {
        Self::default()
    }

    /// Shorthand for `registry.counter_add`.
    pub fn counter_add(&mut self, layer: ObsLayer, name: &str, delta: u64) {
        self.registry.counter_add(layer, name, delta);
    }

    /// Shorthand for `registry.gauge_set`.
    pub fn gauge_set(&mut self, layer: ObsLayer, name: &str, value: f64) {
        self.registry.gauge_set(layer, name, value);
    }

    /// Records one latency sample into the named histogram, creating the
    /// histogram on first use.
    pub fn latency(&mut self, layer: ObsLayer, name: &str, ns: u64) {
        self.hists
            .entry((layer, name.to_string()))
            .or_default()
            .record(ns);
    }

    /// Looks up a histogram by (layer, name).
    pub fn histogram(&self, layer: ObsLayer, name: &str) -> Option<&LatencyHistogram> {
        self.hists.get(&(layer, name.to_string()))
    }

    /// Histograms in deterministic (layer, name) order.
    pub fn histograms(&self) -> impl Iterator<Item = (&(ObsLayer, String), &LatencyHistogram)> {
        self.hists.iter()
    }

    /// Records a trace event.
    pub fn event(&mut self, t_ns: u64, layer: ObsLayer, kind: ObsEventKind, a: u64, b: u64) {
        self.tracer.record(ObsEvent {
            t_ns,
            layer,
            kind,
            a,
            b,
        });
    }

    /// Deterministic JSON of the whole bundle. At most `trace_tail` of the
    /// most recent retained events are inlined (the ring itself keeps more).
    pub fn to_json(&self, trace_tail: usize) -> String {
        let mut s = String::new();
        s.push_str("{\"counters\":{");
        for (i, ((layer, name), v)) in self.registry.counters().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "\"{}.{}\":{}", layer.name(), name, v);
        }
        s.push_str("},\"gauges\":{");
        for (i, ((layer, name), v)) in self.registry.gauges().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "\"{}.{}\":{}", layer.name(), name, fmt_f64(*v));
        }
        s.push_str("},\"histograms\":{");
        for (i, ((layer, name), h)) in self.histograms().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "\"{}.{}\":{}", layer.name(), name, hist_json(h));
        }
        let _ = write!(
            s,
            "}},\"trace\":{{\"recorded\":{},\"dropped\":{},\"events\":[",
            self.tracer.recorded(),
            self.tracer.dropped()
        );
        let skip = self.tracer.len().saturating_sub(trace_tail);
        for (i, ev) in self.tracer.events().skip(skip).enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"t_ns\":{},\"layer\":\"{}\",\"kind\":\"{}\",\"a\":{},\"b\":{}}}",
                ev.t_ns,
                ev.layer.name(),
                ev.kind.name(),
                ev.a,
                ev.b
            );
        }
        s.push_str("]}}");
        s
    }

    /// Deterministic CSV: one `section,layer,name,...` row per metric.
    pub fn to_csv(&self) -> String {
        let mut s = String::from("section,layer,name,value,count,p50_ns,p95_ns,p99_ns,max_ns\n");
        for ((layer, name), v) in self.registry.counters() {
            let _ = writeln!(s, "counter,{},{},{},,,,,", layer.name(), name, v);
        }
        for ((layer, name), v) in self.registry.gauges() {
            let _ = writeln!(s, "gauge,{},{},{},,,,,", layer.name(), name, fmt_f64(*v));
        }
        for ((layer, name), h) in self.histograms() {
            let _ = writeln!(
                s,
                "histogram,{},{},{},{},{},{},{},{}",
                layer.name(),
                name,
                fmt_f64(h.mean_ns()),
                h.count(),
                h.p50(),
                h.p95(),
                h.p99(),
                h.max_ns()
            );
        }
        s
    }
}

/// Serializes one histogram summary as JSON.
pub fn hist_json(h: &LatencyHistogram) -> String {
    format!(
        "{{\"count\":{},\"sum_ns\":{},\"mean_ns\":{},\"p50_ns\":{},\"p95_ns\":{},\"p99_ns\":{},\"max_ns\":{}}}",
        h.count(),
        h.sum_ns(),
        fmt_f64(h.mean_ns()),
        h.p50(),
        h.p95(),
        h.p99(),
        h.max_ns()
    )
}

/// Fixed-precision float formatting for export: finite values render with
/// six decimals; non-finite values (which the registry already refuses)
/// render as 0 so NaN can never appear in a JSON or CSV artifact.
pub fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        String::from("0.000000")
    }
}

/// One band-lifecycle event reported by an allocator via
/// `placement::Allocator::take_events`. Allocators have no disk access, so
/// they queue these and the policy layer drains them into the disk's
/// [`Obs`] with a timestamp.
#[derive(Clone, Copy, Debug)]
pub struct AllocEvent {
    /// What happened (one of the `Band*` kinds).
    pub kind: ObsEventKind,
    /// Byte offset of the extent.
    pub offset: u64,
    /// Byte length of the extent.
    pub len: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        // Bucket 0 covers [0, 1024).
        assert_eq!(LatencyHistogram::bucket_index(0), 0);
        assert_eq!(LatencyHistogram::bucket_index(1023), 0);
        // Exactly on a bound falls into the next bucket.
        assert_eq!(LatencyHistogram::bucket_index(1024), 1);
        assert_eq!(LatencyHistogram::bucket_index(2047), 1);
        assert_eq!(LatencyHistogram::bucket_index(2048), 2);
        // Huge values land in the unbounded last bucket.
        assert_eq!(LatencyHistogram::bucket_index(u64::MAX), HIST_BUCKETS - 1);
        assert_eq!(
            LatencyHistogram::bucket_upper_bound(HIST_BUCKETS - 1),
            u64::MAX
        );
        // Bounds are strictly increasing powers of two.
        for i in 1..HIST_BUCKETS - 1 {
            assert_eq!(
                LatencyHistogram::bucket_upper_bound(i),
                2 * LatencyHistogram::bucket_upper_bound(i - 1)
            );
        }
    }

    #[test]
    fn empty_histogram_is_all_zeros() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.p99(), 0);
        assert_eq!(h.max_ns(), 0);
        assert_eq!(h.mean_ns(), 0.0);
    }

    #[test]
    fn single_sample_percentiles_are_exact() {
        let mut h = LatencyHistogram::new();
        h.record(5_000);
        // Quantiles clamp to the exact observed max.
        assert_eq!(h.p50(), 5_000);
        assert_eq!(h.p95(), 5_000);
        assert_eq!(h.p99(), 5_000);
        assert_eq!(h.max_ns(), 5_000);
        assert_eq!(h.mean_ns(), 5_000.0);
    }

    #[test]
    fn percentile_math_known_distribution() {
        let mut h = LatencyHistogram::new();
        // 90 samples in bucket 0 ([0,1024)), 9 in bucket 4 ([8192,16384)),
        // 1 in bucket 10 ([0.5M, 1M)).
        for _ in 0..90 {
            h.record(500);
        }
        for _ in 0..9 {
            h.record(10_000);
        }
        h.record(700_000);
        assert_eq!(h.count(), 100);
        // rank(0.50)=50 -> bucket 0 -> upper bound 1024.
        assert_eq!(h.p50(), 1024);
        // rank(0.95)=95 -> bucket 4 -> upper bound 16384.
        assert_eq!(h.p95(), 16 * 1024);
        // rank(0.99)=99 -> still bucket 4.
        assert_eq!(h.p99(), 16 * 1024);
        // rank(1.0)=100 -> last occupied bucket, clamped to exact max.
        assert_eq!(h.quantile_ns(1.0), 700_000);
        assert_eq!(h.max_ns(), 700_000);
    }

    #[test]
    fn quantile_never_exceeds_max() {
        let mut h = LatencyHistogram::new();
        h.record(1_500); // bucket 1, upper bound 2048
        h.record(1_600);
        assert_eq!(h.max_ns(), 1_600);
        assert_eq!(h.p99(), 1_600); // clamped below the bucket bound
    }

    #[test]
    fn tracer_ring_drops_oldest() {
        let mut t = EventTracer::new(3);
        for i in 0..5u64 {
            t.record(ObsEvent {
                t_ns: i,
                layer: ObsLayer::Device,
                kind: ObsEventKind::Flush,
                a: i,
                b: 0,
            });
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.recorded(), 5);
        assert_eq!(t.dropped(), 2);
        let kept: Vec<u64> = t.events().map(|e| e.t_ns).collect();
        assert_eq!(kept, vec![2, 3, 4]);
    }

    #[test]
    fn registry_is_deterministic_and_nan_proof() {
        let mut r = MetricsRegistry::default();
        r.counter_add(ObsLayer::Lsm, "flush_bytes", 10);
        r.counter_add(ObsLayer::Device, "seeks", 2);
        r.counter_add(ObsLayer::Lsm, "flush_bytes", 5);
        assert_eq!(r.counter(ObsLayer::Lsm, "flush_bytes"), 15);
        r.gauge_set(ObsLayer::Cache, "hit_ratio", f64::NAN);
        assert_eq!(r.gauge(ObsLayer::Cache, "hit_ratio"), 0.0);
        let keys: Vec<String> = r
            .counters()
            .map(|((l, n), _)| format!("{}.{}", l.name(), n))
            .collect();
        // Device sorts before Lsm: deterministic bottom-up order.
        assert_eq!(keys, vec!["device.seeks", "lsm.flush_bytes"]);
    }

    #[test]
    fn json_export_is_stable() {
        let mut o = Obs::new();
        o.counter_add(ObsLayer::Device, "writes", 3);
        o.gauge_set(ObsLayer::Store, "wa", 2.5);
        o.latency(ObsLayer::Store, "get_ns", 4_000);
        o.event(7, ObsLayer::Lsm, ObsEventKind::Flush, 123, 1);
        let a = o.to_json(16);
        let b = o.to_json(16);
        assert_eq!(a, b);
        assert!(a.contains("\"device.writes\":3"));
        assert!(a.contains("\"store.wa\":2.500000"));
        assert!(a.contains("\"store.get_ns\""));
        assert!(a.contains("\"kind\":\"flush\""));
        assert!(!a.contains("NaN"));
        let csv = o.to_csv();
        assert!(csv.starts_with("section,layer,name"));
        assert!(csv.contains("counter,device,writes,3"));
        assert!(csv.contains("histogram,store,get_ns"));
    }

    #[test]
    fn trace_tail_limits_export_not_ring() {
        let mut o = Obs::new();
        for i in 0..10u64 {
            o.event(i, ObsLayer::Device, ObsEventKind::BandRmw, i, 0);
        }
        let j = o.to_json(2);
        // Only the two most recent events are inlined.
        assert!(j.contains("\"t_ns\":8"));
        assert!(j.contains("\"t_ns\":9"));
        assert!(!j.contains("\"t_ns\":7"));
        assert!(j.contains("\"recorded\":10"));
    }
}
