//! # smr-sim — a discrete-time SMR disk simulator
//!
//! Substrate for the SEALDB reproduction. The paper evaluates LSM-tree
//! key-value stores on an *emulated* host-managed shingled-magnetic-
//! recording drive; this crate provides that emulation in pure Rust:
//!
//! * [`disk::Disk`] — a byte-addressed simulated drive with real contents
//!   (reads return what was written), one of four [`disk::Layout`]s
//!   (conventional HDD; fixed-band SMR with read-modify-write; raw
//!   host-managed SMR with Caveat-Scriptor guard semantics; host-aware
//!   SMR with a persistent media cache and cleaning stalls), and a
//!   mechanical [`timemodel::TimeModel`] calibrated against the paper's
//!   Table II.
//! * [`stats::IoStats`] — the paper's Table I accounting: `WA`, `AWA`
//!   and `MWA = WA × AWA`.
//! * [`trace::TraceRecorder`] — physical-placement traces for the layout
//!   figures (Fig. 2, 11 and 13).
//!
//! Runs are fully deterministic: time is simulated, so identical inputs
//! produce identical clocks, amplification ratios and traces.
//!
//! ```
//! use smr_sim::{Disk, Extent, IoKind, Layout, TimeModel};
//!
//! let cap = 1 << 30;
//! let mut disk = Disk::new(cap, Layout::RawHmSmr { guard_bytes: 1 << 20 }, TimeModel::smr_st5000as0011(cap));
//! disk.write(Extent::new(0, 4096), &[7u8; 4096], IoKind::Raw).unwrap();
//! assert_eq!(disk.read(Extent::new(0, 4096), IoKind::Raw).unwrap(), vec![7u8; 4096]);
//! assert!(disk.clock_ns() > 0);
//! ```

pub mod disk;
pub mod error;
pub mod extent;
pub mod fault;
pub mod obs;
pub mod stats;
pub mod store;
pub mod timemodel;
pub mod trace;

pub use disk::{Disk, DiskSnapshot, Layout};
pub use error::{DiskError, DiskResult};
pub use extent::{Extent, ExtentSet};
pub use fault::FaultPlan;
pub use obs::{
    AllocEvent, EventTracer, LatencyHistogram, MetricsRegistry, Obs, ObsEvent, ObsEventKind,
    ObsLayer,
};
pub use stats::{FaultStats, IoKind, IoStats, KindCounters};
pub use timemodel::TimeModel;
pub use trace::{TraceDir, TraceEvent, TraceRecorder};
