//! # smr-sim — a discrete-time SMR disk simulator
//!
//! Substrate for the SEALDB reproduction. The paper evaluates LSM-tree
//! key-value stores on an *emulated* host-managed shingled-magnetic-
//! recording drive; this crate provides that emulation in pure Rust:
//!
//! * [`disk::Disk`] — a byte-addressed simulated drive with real contents
//!   (reads return what was written), one of four [`disk::Layout`]s
//!   (conventional HDD; fixed-band SMR with read-modify-write; raw
//!   host-managed SMR with Caveat-Scriptor guard semantics; host-aware
//!   SMR with a persistent media cache and cleaning stalls), and a
//!   mechanical [`timemodel::TimeModel`] calibrated against the paper's
//!   Table II.
//! * [`stats::IoStats`] — the paper's Table I accounting: `WA`, `AWA`
//!   and `MWA = WA × AWA`.
//! * [`trace::TraceRecorder`] — physical-placement traces for the layout
//!   figures (Fig. 2, 11 and 13).
//!
//! Runs are fully deterministic: time is simulated, so identical inputs
//! produce identical clocks, amplification ratios and traces.
//!
//! ```
//! use smr_sim::{Disk, Extent, IoKind, Layout, TimeModel};
//!
//! let cap = 1 << 30;
//! let mut disk = Disk::new(cap, Layout::RawHmSmr { guard_bytes: 1 << 20 }, TimeModel::smr_st5000as0011(cap));
//! disk.write(Extent::new(0, 4096), &[7u8; 4096], IoKind::Raw).unwrap();
//! assert_eq!(disk.read(Extent::new(0, 4096), IoKind::Raw).unwrap(), vec![7u8; 4096]);
//! assert!(disk.clock_ns() > 0);
//! ```

/// Debug-build shingle auditor shadow-checking raw HM-SMR writes.
pub mod audit;
/// Shared retry backoff: bounded exponential with seeded jitter.
pub mod backoff;
/// The simulated disk: layouts, timing, write-constraint checks.
pub mod disk;
/// Disk fault and constraint-violation errors.
pub mod error;
/// Byte extents and the interval set tracking valid data.
pub mod extent;
/// Seeded fault-injection plans (torn writes, read errors).
pub mod fault;
/// Seeded cluster network: latency, drops, partitions, kills.
pub mod net;
/// Unified observability: counters, gauges, latency recorders.
pub mod obs;
/// Debug-build happens-before auditor for durability ordering.
pub mod ordering;
/// I/O statistics and amplification accounting.
pub mod stats;
/// Copy-on-write sparse chunk store backing disk contents.
pub mod store;
/// Mechanical time model (seek, rotation, transfer).
pub mod timemodel;
/// Optional per-I/O trace recording.
pub mod trace;

pub use audit::ShingleAuditor;
pub use backoff::{bounded_backoff_ns, Backoff};
pub use disk::{Disk, DiskSnapshot, Layout};
pub use error::{DiskError, DiskResult};
pub use extent::{Extent, ExtentSet};
pub use fault::{
    ClusterFaultClass, ClusterFaultPlan, DeviceFaultClass, FaultPlan, NodeKill, PartitionWindow,
};
pub use net::NetModel;
pub use obs::{
    AllocEvent, EventTracer, LatencyHistogram, MetricsRegistry, Obs, ObsEvent, ObsEventKind,
    ObsLayer,
};
pub use ordering::OrderingAuditor;
pub use stats::{neutral_ratio, FaultStats, IoKind, IoStats, KindCounters};
pub use timemodel::TimeModel;
pub use trace::{TraceDir, TraceEvent, TraceRecorder};
