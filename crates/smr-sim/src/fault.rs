//! Deterministic fault injection for the simulated disk.
//!
//! A [`FaultPlan`] is seeded and fully reproducible: the same plan
//! against the same workload injects byte-identical faults on every
//! run. Four fault classes model how SMR deployments actually fail —
//! dirtier than a clean "refuse all writes":
//!
//! * **Torn writes** — a power cut mid-write persists only a prefix of
//!   the extent. The sim marks the whole extent valid (the drive *acked
//!   sectors it never persisted*), so the stale/zero suffix is caught by
//!   host-side CRC validation, not by a tidy device error.
//! * **Read-time corruption** — seeded bit-flips in registered extents,
//!   modelling latent sector bit-rot that only surfaces at read time.
//! * **Transient read errors** — a read fails once with
//!   [`crate::DiskError::TransientRead`]; re-issuing the same read
//!   succeeds, so hosts that retry recover.
//! * **Persistent read errors** — latent sector errors and whole-band
//!   failures that fail *every* read of a registered region with
//!   [`crate::DiskError::UnrecoverableRead`]. No retry budget helps;
//!   the host must relocate or re-materialise the data (the scrubber's
//!   job).
//! * **Fail-slow regions** — reads overlapping a registered region take
//!   a deterministic latency multiplier. No error is returned: the
//!   fault is visible only in latency histograms, modelling the
//!   fail-slow drives IMRSim-style device studies document.
//! * **Crash-point snapshots** — the disk takes a cheap copy-on-write
//!   snapshot of its state every Kth write, letting a harness "power
//!   cut" at arbitrary write boundaries and reopen from each image.
//!
//! The plan only decides *whether and how* to inject; the [`crate::Disk`]
//! performs the injection and counts it in [`crate::stats::FaultStats`].

use crate::extent::Extent;
use std::collections::BTreeSet;

/// Deterministic xorshift64 used to derive injection positions from the
/// plan's seed. Self-contained so `smr-sim` stays dependency-free.
/// Shared with [`crate::net`] so network jitter rides the same mixer.
pub(crate) fn mix(mut x: u64) -> u64 {
    // splitmix64 finalizer: decorrelates consecutive/structured inputs.
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

/// Verdict the plan hands the disk for one write.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum WriteFault {
    /// No injection: perform the write normally.
    None,
    /// Tear this write: persist only `persist` bytes of the extent, mark
    /// the whole extent valid, and fail the operation.
    Torn { persist: u64 },
    /// Power already lost (a torn write fired earlier): refuse outright.
    PowerLost,
}

/// A seeded, reproducible fault-injection plan installed on a
/// [`crate::Disk`] via [`crate::Disk::faults_mut`].
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    seed: u64,
    /// Writes remaining before the next write is torn.
    torn_countdown: Option<u64>,
    /// A torn write already fired: all later writes fail until disarm.
    power_lost: bool,
    /// Extents whose reads come back with seeded bit-flips.
    corrupt: Vec<Extent>,
    /// Reads remaining to fail transiently (first attempt per offset).
    transient_budget: u64,
    /// Offsets that already failed once (their retry succeeds).
    transient_seen: BTreeSet<u64>,
    /// Latent sector errors: every read overlapping one fails.
    unrecoverable: Vec<Extent>,
    /// Whole-band failures: like `unrecoverable`, tracked separately so
    /// the placement layer can enumerate bands to quarantine.
    failed_bands: Vec<Extent>,
    /// Fail-slow regions with their read-latency multiplier.
    fail_slow: Vec<(Extent, u64)>,
    /// Take a disk snapshot every `k` completed writes.
    snapshot_every: Option<u64>,
}

impl FaultPlan {
    /// Creates an inert plan with the given determinism seed.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            ..Default::default()
        }
    }

    /// The determinism seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Arms a torn write: the next `n` writes succeed, the one after
    /// persists only a seeded prefix of its extent and fails, and every
    /// write after that fails with [`crate::DiskError::Injected`] until
    /// [`FaultPlan::disarm_torn_writes`] ("power restored").
    pub fn tear_write_after(&mut self, n: u64) {
        self.torn_countdown = Some(n);
        self.power_lost = false;
    }

    /// Disarms torn-write injection; subsequent writes succeed again.
    pub fn disarm_torn_writes(&mut self) {
        self.torn_countdown = None;
        self.power_lost = false;
    }

    /// True while a torn write is armed or has fired.
    pub fn torn_write_pending(&self) -> bool {
        self.torn_countdown.is_some() || self.power_lost
    }

    /// Registers an extent whose future reads return seeded bit-flips.
    pub fn corrupt_extent(&mut self, ext: Extent) {
        if !ext.is_empty() {
            self.corrupt.push(ext);
        }
    }

    /// Clears all registered read-corruption extents.
    pub fn clear_corruption(&mut self) {
        self.corrupt.clear();
    }

    /// Arms `n` transient read errors: the next `n` distinct read
    /// offsets each fail once with [`crate::DiskError::TransientRead`];
    /// retrying the same read succeeds.
    pub fn fail_reads_transiently(&mut self, n: u64) {
        self.transient_budget = n;
        self.transient_seen.clear();
    }

    /// Registers a latent sector error: every future read overlapping
    /// `ext` fails with [`crate::DiskError::UnrecoverableRead`]. Unlike
    /// transient errors, retries never succeed; the data is only
    /// reachable again once the host relocates it off the bad region.
    pub fn fail_reads_permanently(&mut self, ext: Extent) {
        if !ext.is_empty() {
            self.unrecoverable.push(ext);
        }
    }

    /// Registers a whole-band failure spanning `band`. Reads fail like
    /// latent sector errors; the band is additionally reported through
    /// [`FaultPlan::failed_bands`] so placement can fence it.
    pub fn fail_band(&mut self, band: Extent) {
        if !band.is_empty() {
            self.failed_bands.push(band);
        }
    }

    /// The registered whole-band failures, in registration order.
    pub fn failed_bands(&self) -> &[Extent] {
        &self.failed_bands
    }

    /// The registered latent sector errors, in registration order.
    pub fn unrecoverable_extents(&self) -> &[Extent] {
        &self.unrecoverable
    }

    /// Clears all persistent read faults (sector errors and bands).
    pub fn clear_persistent_faults(&mut self) {
        self.unrecoverable.clear();
        self.failed_bands.clear();
    }

    /// Registers a fail-slow region: reads overlapping `ext` take
    /// `multiplier`× their modelled service time (`multiplier >= 1`).
    /// The read still succeeds — the fault shows up only in latency.
    pub fn slow_reads(&mut self, ext: Extent, multiplier: u64) {
        assert!(multiplier >= 1, "fail-slow multiplier must be at least 1");
        if !ext.is_empty() && multiplier > 1 {
            self.fail_slow.push((ext, multiplier));
        }
    }

    /// Clears all fail-slow regions.
    pub fn clear_fail_slow(&mut self) {
        self.fail_slow.clear();
    }

    /// Enables automatic copy-on-write disk snapshots every `k` writes
    /// (`k >= 1`). Snapshots accumulate on the disk until drained with
    /// [`crate::Disk::take_crash_snapshots`].
    pub fn snapshot_every(&mut self, k: u64) {
        assert!(k >= 1, "snapshot interval must be at least 1");
        self.snapshot_every = Some(k);
    }

    /// Disables automatic snapshots.
    pub fn disable_snapshots(&mut self) {
        self.snapshot_every = None;
    }

    /// Decides the fate of the next write of `len` bytes.
    pub(crate) fn on_write(&mut self, len: u64) -> WriteFault {
        if self.power_lost {
            return WriteFault::PowerLost;
        }
        match self.torn_countdown.as_mut() {
            None => WriteFault::None,
            Some(n) if *n > 0 => {
                *n -= 1;
                WriteFault::None
            }
            Some(_) => {
                self.torn_countdown = None;
                self.power_lost = true;
                // Persist a seeded prefix: anywhere from 0 bytes to all
                // but one ([0, len)), so sweeps exercise every boundary.
                let persist = if len <= 1 {
                    0
                } else {
                    mix(self.seed ^ len) % len
                };
                WriteFault::Torn { persist }
            }
        }
    }

    /// True when `ext` overlaps a latent sector error or a failed band:
    /// the read must fail persistently, regardless of retries.
    pub(crate) fn persistent_fault(&self, ext: Extent) -> bool {
        let overlaps = |reg: &Extent| reg.offset.max(ext.offset) < reg.end().min(ext.end());
        self.unrecoverable.iter().any(overlaps) || self.failed_bands.iter().any(overlaps)
    }

    /// The fail-slow latency multiplier for a read of `ext`: the largest
    /// multiplier among overlapping fail-slow regions, or 1 when none
    /// overlap. Deterministic — the same read always slows the same way.
    pub(crate) fn fail_slow_factor(&self, ext: Extent) -> u64 {
        self.fail_slow
            .iter()
            .filter(|(reg, _)| reg.offset.max(ext.offset) < reg.end().min(ext.end()))
            .map(|&(_, m)| m)
            .max()
            .unwrap_or(1)
    }

    /// Decides whether a read of `ext` fails transiently right now.
    pub(crate) fn on_read(&mut self, ext: Extent) -> bool {
        if self.transient_budget == 0 || self.transient_seen.contains(&ext.offset) {
            return false;
        }
        self.transient_budget -= 1;
        self.transient_seen.insert(ext.offset);
        true
    }

    /// Applies seeded bit-flips to `buf` (the bytes just read from
    /// `ext`) wherever it overlaps a registered corrupt extent. Returns
    /// the number of bits flipped. Deterministic: the same read always
    /// sees the same corruption.
    pub(crate) fn corrupt_buf(&self, ext: Extent, buf: &mut [u8]) -> u64 {
        let mut flipped = 0u64;
        for reg in &self.corrupt {
            let start = reg.offset.max(ext.offset);
            let end = reg.end().min(ext.end());
            if start >= end {
                continue;
            }
            // One flip per 4 KiB of overlap, at least one: enough to
            // break any CRC without wholesale trashing the buffer.
            let overlap = end - start;
            let flips = 1 + overlap / 4096;
            for i in 0..flips {
                let h = mix(self.seed ^ reg.offset.rotate_left(17) ^ i);
                let pos = start + h % overlap;
                let bit = (h >> 32) % 8;
                buf[(pos - ext.offset) as usize] ^= 1 << bit;
                flipped += 1;
            }
        }
        flipped
    }

    /// True when a snapshot is due after the `write_index`-th write.
    pub(crate) fn snapshot_due(&self, write_index: u64) -> bool {
        match self.snapshot_every {
            Some(k) => write_index.is_multiple_of(k),
            None => false,
        }
    }
}

/// A network-partition window for one cluster node: while the
/// simulated clock is inside `[from_ns, to_ns)` the node can neither
/// send nor receive replication traffic. Messages addressed to a
/// partitioned node are buffered by the network and released when the
/// window closes; `to_ns == u64::MAX` means the partition never heals.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PartitionWindow {
    /// Cluster node index the window applies to.
    pub node: usize,
    /// Start of the window (inclusive), simulated ns.
    pub from_ns: u64,
    /// End of the window (exclusive), simulated ns.
    pub to_ns: u64,
}

/// A scheduled node kill: at `at_ns` the node's process dies and never
/// acknowledges anything again. Its disk survives (a rejoin rebuilds
/// from a fresh store plus catch-up streaming; promotion of a replica
/// uses its own disk via the crash-image recovery path).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NodeKill {
    /// Cluster node index to kill.
    pub node: usize,
    /// Kill time, simulated ns.
    pub at_ns: u64,
}

/// Cluster-level fault schedule: partitions and node kills keyed by
/// node index on the shared simulated clock. Installed on a
/// [`crate::net::NetModel`]; the replication harness consults it for
/// promotion eligibility, the network for delivery.
#[derive(Clone, Debug, Default)]
pub struct ClusterFaultPlan {
    partitions: Vec<PartitionWindow>,
    kills: Vec<NodeKill>,
}

impl ClusterFaultPlan {
    /// An empty schedule: every node healthy forever.
    pub fn new() -> Self {
        ClusterFaultPlan::default()
    }

    /// Schedules a partition of `node` over `[from_ns, to_ns)`.
    /// `to_ns == u64::MAX` never heals.
    pub fn partition(&mut self, node: usize, from_ns: u64, to_ns: u64) {
        assert!(from_ns < to_ns, "empty partition window");
        self.partitions.push(PartitionWindow {
            node,
            from_ns,
            to_ns,
        });
    }

    /// Schedules a kill of `node` at `at_ns`.
    pub fn kill(&mut self, node: usize, at_ns: u64) {
        self.kills.push(NodeKill { node, at_ns });
    }

    /// True while `node` is inside any partition window at time `t_ns`.
    pub fn partitioned_at(&self, node: usize, t_ns: u64) -> bool {
        self.partitions
            .iter()
            .any(|w| w.node == node && w.from_ns <= t_ns && t_ns < w.to_ns)
    }

    /// Earliest time `>= t_ns` at which `node` is unpartitioned, or
    /// `None` if a never-healing window covers it. Chained windows are
    /// followed to a fixpoint.
    pub fn heal_ns(&self, node: usize, t_ns: u64) -> Option<u64> {
        let mut t = t_ns;
        loop {
            let covering = self
                .partitions
                .iter()
                .filter(|w| w.node == node && w.from_ns <= t && t < w.to_ns)
                .map(|w| w.to_ns)
                .max();
            match covering {
                None => return Some(t),
                Some(u64::MAX) => return None,
                Some(end) => t = end,
            }
        }
    }

    /// True once `node` has been killed at or before `t_ns`.
    pub fn killed_at(&self, node: usize, t_ns: u64) -> bool {
        self.kills.iter().any(|k| k.node == node && k.at_ns <= t_ns)
    }

    /// Clears every kill scheduled for `node` — the node slot rejoins
    /// the cluster as a fresh process and may receive traffic again.
    pub fn revive(&mut self, node: usize) {
        self.kills.retain(|k| k.node != node);
    }

    /// The scheduled partition windows, in registration order.
    pub fn partitions(&self) -> &[PartitionWindow] {
        &self.partitions
    }

    /// The scheduled node kills, in registration order.
    pub fn kills(&self) -> &[NodeKill] {
        &self.kills
    }
}

/// The device fault classes a [`FaultPlan`] can inject, enumerated so
/// harnesses (chaos generator, bench coverage counters) can reason
/// about coverage by name instead of by API call.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DeviceFaultClass {
    /// Power cut mid-write: a seeded prefix persists, the drive acked
    /// sectors it never wrote ([`FaultPlan::tear_write_after`]).
    TornWrite,
    /// Latent bit-rot surfacing at read time
    /// ([`FaultPlan::corrupt_extent`]).
    Corruption,
    /// Read fails once, the retry succeeds
    /// ([`FaultPlan::fail_reads_transiently`]).
    TransientRead,
    /// Latent sector error: every overlapping read fails forever
    /// ([`FaultPlan::fail_reads_permanently`]).
    UnrecoverableRead,
    /// Whole-band failure the placement layer must fence
    /// ([`FaultPlan::fail_band`]).
    BandFailure,
    /// Reads succeed but take a latency multiplier
    /// ([`FaultPlan::slow_reads`]).
    FailSlow,
}

impl DeviceFaultClass {
    /// Every device fault class, in declaration order.
    pub const ALL: [DeviceFaultClass; 6] = [
        DeviceFaultClass::TornWrite,
        DeviceFaultClass::Corruption,
        DeviceFaultClass::TransientRead,
        DeviceFaultClass::UnrecoverableRead,
        DeviceFaultClass::BandFailure,
        DeviceFaultClass::FailSlow,
    ];

    /// Stable snake_case name used in schedules and bench artifacts.
    pub fn name(self) -> &'static str {
        match self {
            DeviceFaultClass::TornWrite => "torn_write",
            DeviceFaultClass::Corruption => "corruption",
            DeviceFaultClass::TransientRead => "transient_read",
            DeviceFaultClass::UnrecoverableRead => "unrecoverable_read",
            DeviceFaultClass::BandFailure => "band_failure",
            DeviceFaultClass::FailSlow => "fail_slow",
        }
    }
}

/// The cluster fault classes a [`ClusterFaultPlan`] (plus the harness
/// APIs built on it) can inject, mirroring [`DeviceFaultClass`] for the
/// network/process layer.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ClusterFaultClass {
    /// A node loses replication traffic over a finite window
    /// ([`ClusterFaultPlan::partition`]).
    Partition,
    /// A node process dies ([`ClusterFaultPlan::kill`]).
    Kill,
    /// A killed node slot rejoins as a fresh process
    /// ([`ClusterFaultPlan::revive`]).
    Revive,
}

impl ClusterFaultClass {
    /// Every cluster fault class, in declaration order.
    pub const ALL: [ClusterFaultClass; 3] = [
        ClusterFaultClass::Partition,
        ClusterFaultClass::Kill,
        ClusterFaultClass::Revive,
    ];

    /// Stable snake_case name used in schedules and bench artifacts.
    pub fn name(self) -> &'static str {
        match self {
            ClusterFaultClass::Partition => "partition",
            ClusterFaultClass::Kill => "kill",
            ClusterFaultClass::Revive => "revive",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_class_names_are_stable_and_distinct() {
        let dev: BTreeSet<&str> = DeviceFaultClass::ALL.iter().map(|c| c.name()).collect();
        assert_eq!(dev.len(), DeviceFaultClass::ALL.len());
        let clu: BTreeSet<&str> = ClusterFaultClass::ALL.iter().map(|c| c.name()).collect();
        assert_eq!(clu.len(), ClusterFaultClass::ALL.len());
        assert!(dev.contains("torn_write") && clu.contains("partition"));
    }

    #[test]
    fn torn_write_fires_once_then_power_stays_lost() {
        let mut p = FaultPlan::new(42);
        p.tear_write_after(2);
        assert_eq!(p.on_write(100), WriteFault::None);
        assert_eq!(p.on_write(100), WriteFault::None);
        let fault = p.on_write(100);
        match fault {
            WriteFault::Torn { persist } => assert!(persist < 100),
            other => panic!("expected torn write, got {other:?}"),
        }
        assert_eq!(p.on_write(100), WriteFault::PowerLost);
        assert_eq!(p.on_write(50), WriteFault::PowerLost);
        p.disarm_torn_writes();
        assert_eq!(p.on_write(100), WriteFault::None);
    }

    #[test]
    fn torn_prefix_is_deterministic_per_seed() {
        let persist = |seed: u64| {
            let mut p = FaultPlan::new(seed);
            p.tear_write_after(0);
            match p.on_write(4096) {
                WriteFault::Torn { persist } => persist,
                other => panic!("expected torn write, got {other:?}"),
            }
        };
        assert_eq!(persist(7), persist(7));
        // Different seeds land different crash points (overwhelmingly).
        assert_ne!(persist(7), persist(8));
    }

    #[test]
    fn transient_reads_fail_once_per_offset() {
        let mut p = FaultPlan::new(1);
        p.fail_reads_transiently(2);
        let a = Extent::new(0, 512);
        let b = Extent::new(4096, 512);
        let c = Extent::new(8192, 512);
        assert!(p.on_read(a)); // fails
        assert!(!p.on_read(a)); // retry succeeds
        assert!(p.on_read(b)); // second budgeted failure
        assert!(!p.on_read(b));
        assert!(!p.on_read(c)); // budget exhausted
    }

    #[test]
    fn corruption_flips_bits_deterministically_within_overlap() {
        let p = {
            let mut p = FaultPlan::new(99);
            p.corrupt_extent(Extent::new(1000, 100));
            p
        };
        let read = Extent::new(900, 300);
        let mut buf1 = vec![0u8; 300];
        let n1 = p.corrupt_buf(read, &mut buf1);
        assert!(n1 > 0);
        // Flips stay inside the registered overlap [1000, 1100).
        for (i, &b) in buf1.iter().enumerate() {
            if b != 0 {
                let abs = 900 + i as u64;
                assert!((1000..1100).contains(&abs), "flip outside overlap at {abs}");
            }
        }
        // Same read, same corruption.
        let mut buf2 = vec![0u8; 300];
        let n2 = p.corrupt_buf(read, &mut buf2);
        assert_eq!(n1, n2);
        assert_eq!(buf1, buf2);
        // A read that misses the extent is untouched.
        let mut clean = vec![0u8; 64];
        assert_eq!(p.corrupt_buf(Extent::new(0, 64), &mut clean), 0);
        assert!(clean.iter().all(|&b| b == 0));
    }

    #[test]
    fn persistent_faults_fail_every_overlapping_read() {
        let mut p = FaultPlan::new(3);
        p.fail_reads_permanently(Extent::new(4096, 512));
        p.fail_band(Extent::new(1 << 20, 1 << 16));
        // Overlap anywhere in the region fails, repeatedly.
        for _ in 0..3 {
            assert!(p.persistent_fault(Extent::new(4000, 200)));
            assert!(p.persistent_fault(Extent::new(4500, 4096)));
            assert!(p.persistent_fault(Extent::new((1 << 20) + 100, 8)));
        }
        // Adjacent-but-disjoint reads are fine.
        assert!(!p.persistent_fault(Extent::new(0, 4096)));
        assert!(!p.persistent_fault(Extent::new(4608, 100)));
        assert_eq!(p.failed_bands().len(), 1);
        assert_eq!(p.unrecoverable_extents().len(), 1);
        p.clear_persistent_faults();
        assert!(!p.persistent_fault(Extent::new(4096, 512)));
        assert!(p.failed_bands().is_empty());
    }

    #[test]
    fn fail_slow_factor_is_max_overlap_or_one() {
        let mut p = FaultPlan::new(4);
        assert_eq!(p.fail_slow_factor(Extent::new(0, 100)), 1);
        p.slow_reads(Extent::new(1000, 1000), 4);
        p.slow_reads(Extent::new(1500, 100), 9);
        assert_eq!(p.fail_slow_factor(Extent::new(0, 100)), 1);
        assert_eq!(p.fail_slow_factor(Extent::new(1100, 10)), 4);
        assert_eq!(p.fail_slow_factor(Extent::new(1400, 200)), 9);
        // Multiplier 1 registrations are no-ops.
        p.clear_fail_slow();
        p.slow_reads(Extent::new(1000, 1000), 1);
        assert_eq!(p.fail_slow_factor(Extent::new(1100, 10)), 1);
    }

    #[test]
    fn partition_windows_cover_and_heal() {
        let mut plan = ClusterFaultPlan::new();
        plan.partition(1, 100, 200);
        plan.partition(1, 200, 300); // chained window
        plan.partition(2, 50, u64::MAX);
        assert!(!plan.partitioned_at(1, 99));
        assert!(plan.partitioned_at(1, 100));
        assert!(plan.partitioned_at(1, 250));
        assert!(!plan.partitioned_at(1, 300));
        assert!(!plan.partitioned_at(0, 150));
        assert_eq!(plan.heal_ns(1, 150), Some(300));
        assert_eq!(plan.heal_ns(1, 300), Some(300));
        assert_eq!(plan.heal_ns(0, 150), Some(150));
        assert_eq!(plan.heal_ns(2, 60), None);
    }

    #[test]
    fn kills_are_permanent() {
        let mut plan = ClusterFaultPlan::new();
        plan.kill(0, 500);
        assert!(!plan.killed_at(0, 499));
        assert!(plan.killed_at(0, 500));
        assert!(plan.killed_at(0, u64::MAX));
        assert!(!plan.killed_at(1, u64::MAX));
        assert_eq!(plan.kills().len(), 1);
        assert!(plan.partitions().is_empty());
        plan.revive(0);
        assert!(!plan.killed_at(0, u64::MAX));
    }

    #[test]
    fn snapshot_cadence() {
        let mut p = FaultPlan::new(0);
        assert!(!p.snapshot_due(5));
        p.snapshot_every(3);
        assert!(p.snapshot_due(3));
        assert!(!p.snapshot_due(4));
        assert!(p.snapshot_due(6));
        p.disable_snapshots();
        assert!(!p.snapshot_due(6));
    }
}
