//! Shared retry-backoff policy for every layer that re-issues work —
//! frontend degraded reads, replica failover redirects, chaos traffic.
//!
//! All of them used to hand-roll the same doubling-and-capping formula;
//! this module is the single home so the semantics stay pinned in one
//! place. Two knobs:
//!
//! * **Exponential bound** — [`bounded_backoff_ns`] doubles a base delay
//!   per attempt and saturates at a cap; overflow-safe for any input.
//! * **Seeded jitter** — [`Backoff`] optionally spreads each delay by a
//!   deterministic ±25% so a population of retrying clients does not
//!   synchronize into a retry storm, while the same (seed, attempt)
//!   always yields the same delay (runs stay byte-reproducible).

use crate::fault::mix;

/// Bounded exponential backoff: `base * 2^attempt`, floored at 1 ns,
/// capped at `max` (or at `base` when `max < base`). Saturates instead
/// of overflowing for any `attempt`.
pub fn bounded_backoff_ns(base: u64, max: u64, attempt: u32) -> u64 {
    let floor = base.max(1);
    floor
        .saturating_mul(1u64 << attempt.min(62))
        .min(max.max(floor))
}

/// A reusable backoff policy: bounded exponential growth with optional
/// deterministic seeded jitter.
///
/// Without jitter, [`Backoff::delay_ns`] is exactly
/// [`bounded_backoff_ns`]. With jitter, each delay is spread uniformly
/// over ±25% of the exponential value — derived from the seed and the
/// attempt number only, so identical configurations reproduce identical
/// delay sequences.
#[derive(Clone, Copy, Debug)]
pub struct Backoff {
    /// First-attempt delay, ns.
    base_ns: u64,
    /// Delay cap, ns (raised to `base_ns` when smaller).
    max_ns: u64,
    /// Jitter seed; `None` disables jitter entirely.
    jitter_seed: Option<u64>,
}

impl Backoff {
    /// A jitter-free policy: delays follow [`bounded_backoff_ns`].
    pub fn new(base_ns: u64, max_ns: u64) -> Self {
        Backoff {
            base_ns,
            max_ns,
            jitter_seed: None,
        }
    }

    /// A policy with deterministic ±25% jitter derived from `seed`.
    pub fn with_jitter(base_ns: u64, max_ns: u64, seed: u64) -> Self {
        Backoff {
            base_ns,
            max_ns,
            jitter_seed: Some(seed),
        }
    }

    /// The delay before retry number `attempt` (0-based), ns.
    ///
    /// Jittered delays stay within `[1, max(base, max)]`: the jitter is
    /// applied to the exponential value first, then the floor and cap
    /// are re-imposed so the contract of the jitter-free policy holds.
    pub fn delay_ns(&self, attempt: u32) -> u64 {
        let d = bounded_backoff_ns(self.base_ns, self.max_ns, attempt);
        match self.jitter_seed {
            None => d,
            Some(seed) => {
                // Uniform offset over [-d/4, +d/4]: span d/2 + 1 values.
                let quarter = d / 4;
                let span = quarter * 2 + 1;
                let offset = mix(seed ^ u64::from(attempt).rotate_left(17)) % span;
                (d - quarter + offset).clamp(1, self.max_ns.max(self.base_ns.max(1)))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn doubles_then_caps_and_saturates() {
        assert_eq!(bounded_backoff_ns(100, 1000, 0), 100);
        assert_eq!(bounded_backoff_ns(100, 1000, 1), 200);
        assert_eq!(bounded_backoff_ns(100, 1000, 2), 400);
        assert_eq!(bounded_backoff_ns(100, 1000, 3), 800);
        assert_eq!(bounded_backoff_ns(100, 1000, 4), 1000);
        assert_eq!(bounded_backoff_ns(100, 1000, 60), 1000);
        // Zeroes floor at 1 ns; a cap below base is raised to base.
        assert_eq!(bounded_backoff_ns(0, 0, 0), 1);
        assert_eq!(bounded_backoff_ns(500, 100, 0), 500);
        // Saturating: enormous attempts never overflow.
        assert_eq!(bounded_backoff_ns(u64::MAX, u64::MAX, 63), u64::MAX);
    }

    #[test]
    fn jitter_free_policy_matches_free_function() {
        let b = Backoff::new(250, 10_000);
        for attempt in 0..20 {
            assert_eq!(
                b.delay_ns(attempt),
                bounded_backoff_ns(250, 10_000, attempt)
            );
        }
    }

    /// Property sweep: for every (seed, attempt) cell the jittered delay
    /// is reproducible, stays within ±25% of the exponential value, and
    /// respects the global floor and cap.
    #[test]
    fn jitter_is_deterministic_and_bounded() {
        for seed in [0u64, 1, 42, 0xDEAD_BEEF, u64::MAX] {
            let b = Backoff::with_jitter(200, 50_000, seed);
            let twin = Backoff::with_jitter(200, 50_000, seed);
            for attempt in 0..24 {
                let d = b.delay_ns(attempt);
                assert_eq!(d, twin.delay_ns(attempt), "seed {seed} attempt {attempt}");
                let nominal = bounded_backoff_ns(200, 50_000, attempt);
                let quarter = nominal / 4;
                assert!(
                    d >= (nominal - quarter).max(1) && d <= (nominal + quarter).min(50_000),
                    "seed {seed} attempt {attempt}: {d} outside ±25% of {nominal}"
                );
            }
        }
    }

    /// Different seeds actually spread: across a population of jittered
    /// clients at the same attempt, at least two distinct delays appear
    /// (the whole point of jitter — no synchronized retry storm).
    #[test]
    fn jitter_decorrelates_across_seeds() {
        let mut distinct = std::collections::BTreeSet::new();
        for seed in 0..16u64 {
            distinct.insert(Backoff::with_jitter(1_000, 1 << 30, seed).delay_ns(5));
        }
        assert!(distinct.len() > 1, "16 seeds produced identical delays");
    }

    /// Jittered delays never exceed the cap even when the exponential
    /// value already sits at the cap (jitter cannot push past it).
    #[test]
    fn jitter_respects_cap_at_saturation() {
        let b = Backoff::with_jitter(1_000, 4_000, 7);
        for attempt in 2..40 {
            assert!(b.delay_ns(attempt) <= 4_000);
        }
    }
}
