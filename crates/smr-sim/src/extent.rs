//! Byte extents and an interval set over them.
//!
//! An [`Extent`] is a half-open byte range `[offset, offset + len)` on the
//! disk address space. [`ExtentSet`] maintains a set of non-overlapping,
//! coalesced extents and supports the queries the SMR layouts need:
//! overlap tests, insertion (with automatic merging of adjacent ranges)
//! and removal (with splitting).

use std::collections::BTreeMap;
use std::fmt;

/// A half-open byte range `[offset, offset + len)` on the disk.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Extent {
    /// First byte covered by the extent.
    pub offset: u64,
    /// Number of bytes covered; always non-zero for stored extents.
    pub len: u64,
}

impl Extent {
    /// Creates a new extent. `len` may be zero (an empty extent), which is
    /// useful as a sentinel; empty extents overlap nothing.
    pub const fn new(offset: u64, len: u64) -> Self {
        Extent { offset, len }
    }

    /// One-past-the-end offset.
    pub const fn end(&self) -> u64 {
        self.offset + self.len
    }

    /// Whether this extent covers zero bytes.
    pub const fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether the two extents share at least one byte.
    pub fn overlaps(&self, other: &Extent) -> bool {
        !self.is_empty()
            && !other.is_empty()
            && self.offset < other.end()
            && other.offset < self.end()
    }

    /// Whether `other` is entirely contained in `self`.
    pub fn contains(&self, other: &Extent) -> bool {
        other.is_empty() || (self.offset <= other.offset && other.end() <= self.end())
    }

    /// Whether the byte at `pos` falls inside the extent.
    pub fn contains_pos(&self, pos: u64) -> bool {
        self.offset <= pos && pos < self.end()
    }

    /// The intersection of two extents, or `None` if they are disjoint.
    pub fn intersection(&self, other: &Extent) -> Option<Extent> {
        let lo = self.offset.max(other.offset);
        let hi = self.end().min(other.end());
        if lo < hi {
            Some(Extent::new(lo, hi - lo))
        } else {
            None
        }
    }
}

impl fmt::Debug for Extent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {})", self.offset, self.end())
    }
}

/// A set of non-overlapping byte extents, kept coalesced: no two stored
/// extents touch or overlap. Backed by a `BTreeMap` keyed on start offset,
/// so all operations are `O(log n)` plus the size of the affected range.
#[derive(Clone, Default)]
pub struct ExtentSet {
    /// start offset -> length
    map: BTreeMap<u64, u64>,
    /// Total bytes covered, maintained incrementally.
    total: u64,
}

impl ExtentSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct (coalesced) extents stored.
    pub fn extent_count(&self) -> usize {
        self.map.len()
    }

    /// Total number of bytes covered by the set.
    pub fn covered_bytes(&self) -> u64 {
        self.total
    }

    /// Whether the set covers no bytes.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Returns `true` if any byte of `ext` is covered by the set.
    pub fn overlaps(&self, ext: Extent) -> bool {
        if ext.is_empty() {
            return false;
        }
        // Candidate 1: the extent starting at or before `ext.offset`.
        if let Some((&start, &len)) = self.map.range(..=ext.offset).next_back() {
            if Extent::new(start, len).overlaps(&ext) {
                return true;
            }
        }
        // Candidate 2: the first extent starting inside `ext`.
        if let Some((&start, _)) = self.map.range(ext.offset..ext.end()).next() {
            debug_assert!(start < ext.end());
            return true;
        }
        false
    }

    /// Returns `true` if every byte of `ext` is covered.
    pub fn covers(&self, ext: Extent) -> bool {
        if ext.is_empty() {
            return true;
        }
        match self.map.range(..=ext.offset).next_back() {
            Some((&start, &len)) => Extent::new(start, len).contains(&ext),
            None => false,
        }
    }

    /// All stored extents that overlap `ext`, clipped to `ext`.
    pub fn overlapping(&self, ext: Extent) -> Vec<Extent> {
        let mut out = Vec::new();
        if ext.is_empty() {
            return out;
        }
        let scan_from = match self.map.range(..=ext.offset).next_back() {
            Some((&start, _)) => start,
            None => ext.offset,
        };
        for (&start, &len) in self.map.range(scan_from..ext.end()) {
            if let Some(clip) = Extent::new(start, len).intersection(&ext) {
                out.push(clip);
            }
        }
        out
    }

    /// Inserts `ext`, merging with any overlapping or adjacent extents.
    pub fn insert(&mut self, ext: Extent) {
        if ext.is_empty() {
            return;
        }
        let mut lo = ext.offset;
        let mut hi = ext.end();
        // Absorb the predecessor if it touches or overlaps.
        if let Some((&start, &len)) = self.map.range(..=lo).next_back() {
            if start + len >= lo {
                lo = start;
                hi = hi.max(start + len);
            }
        }
        // Absorb all extents starting within [lo, hi].
        let absorbed: Vec<u64> = self.map.range(lo..=hi).map(|(&s, _)| s).collect();
        for s in absorbed {
            let len = self.map.remove(&s).expect("key just observed");
            self.total -= len;
            hi = hi.max(s + len);
        }
        self.map.insert(lo, hi - lo);
        self.total += hi - lo;
    }

    /// Removes `ext` from the set, splitting partially-covered extents.
    /// Bytes of `ext` not currently in the set are ignored.
    pub fn remove(&mut self, ext: Extent) {
        if ext.is_empty() {
            return;
        }
        let lo = ext.offset;
        let hi = ext.end();
        // Collect all extents that may intersect [lo, hi).
        let mut touched: Vec<(u64, u64)> = Vec::new();
        if let Some((&start, &len)) = self.map.range(..lo).next_back() {
            if start + len > lo {
                touched.push((start, len));
            }
        }
        for (&start, &len) in self.map.range(lo..hi) {
            touched.push((start, len));
        }
        for (start, len) in touched {
            self.map.remove(&start);
            self.total -= len;
            let end = start + len;
            if start < lo {
                self.map.insert(start, lo - start);
                self.total += lo - start;
            }
            if end > hi {
                self.map.insert(hi, end - hi);
                self.total += end - hi;
            }
        }
    }

    /// Iterates over the stored (coalesced) extents in address order.
    pub fn iter(&self) -> impl Iterator<Item = Extent> + '_ {
        self.map
            .iter()
            .map(|(&start, &len)| Extent::new(start, len))
    }

    /// The extent containing `pos`, if any.
    pub fn containing(&self, pos: u64) -> Option<Extent> {
        let (&start, &len) = self.map.range(..=pos).next_back()?;
        let e = Extent::new(start, len);
        e.contains_pos(pos).then_some(e)
    }

    /// Largest end offset of any stored extent (the "high water mark"), or 0.
    pub fn max_end(&self) -> u64 {
        self.map.iter().next_back().map_or(0, |(&s, &l)| s + l)
    }
}

impl fmt::Debug for ExtentSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extent_basics() {
        let a = Extent::new(10, 10);
        assert_eq!(a.end(), 20);
        assert!(a.overlaps(&Extent::new(19, 1)));
        assert!(!a.overlaps(&Extent::new(20, 5)));
        assert!(!a.overlaps(&Extent::new(0, 10)));
        assert!(a.contains(&Extent::new(12, 3)));
        assert!(!a.contains(&Extent::new(12, 30)));
        assert_eq!(
            a.intersection(&Extent::new(15, 100)),
            Some(Extent::new(15, 5))
        );
        assert_eq!(a.intersection(&Extent::new(20, 100)), None);
    }

    #[test]
    fn empty_extent_overlaps_nothing() {
        let e = Extent::new(5, 0);
        assert!(!e.overlaps(&Extent::new(0, 100)));
        assert!(!Extent::new(0, 100).overlaps(&e));
        assert!(Extent::new(0, 100).contains(&e));
    }

    #[test]
    fn insert_coalesces_adjacent() {
        let mut s = ExtentSet::new();
        s.insert(Extent::new(0, 10));
        s.insert(Extent::new(10, 10));
        assert_eq!(s.extent_count(), 1);
        assert_eq!(s.covered_bytes(), 20);
        assert!(s.covers(Extent::new(0, 20)));
    }

    #[test]
    fn insert_merges_overlapping_span() {
        let mut s = ExtentSet::new();
        s.insert(Extent::new(0, 5));
        s.insert(Extent::new(20, 5));
        s.insert(Extent::new(40, 5));
        s.insert(Extent::new(3, 40)); // swallows all three
        assert_eq!(s.extent_count(), 1);
        assert_eq!(s.covered_bytes(), 45);
        assert!(s.covers(Extent::new(0, 45)));
        assert!(!s.covers(Extent::new(0, 46)));
    }

    #[test]
    fn remove_splits() {
        let mut s = ExtentSet::new();
        s.insert(Extent::new(0, 100));
        s.remove(Extent::new(40, 20));
        assert_eq!(s.extent_count(), 2);
        assert_eq!(s.covered_bytes(), 80);
        assert!(s.covers(Extent::new(0, 40)));
        assert!(s.covers(Extent::new(60, 40)));
        assert!(!s.overlaps(Extent::new(40, 20)));
    }

    #[test]
    fn remove_spanning_multiple() {
        let mut s = ExtentSet::new();
        s.insert(Extent::new(0, 10));
        s.insert(Extent::new(20, 10));
        s.insert(Extent::new(40, 10));
        s.remove(Extent::new(5, 40));
        assert_eq!(s.covered_bytes(), 10);
        assert!(s.covers(Extent::new(0, 5)));
        assert!(s.covers(Extent::new(45, 5)));
    }

    #[test]
    fn overlap_queries() {
        let mut s = ExtentSet::new();
        s.insert(Extent::new(100, 50));
        assert!(s.overlaps(Extent::new(149, 1)));
        assert!(s.overlaps(Extent::new(0, 101)));
        assert!(!s.overlaps(Extent::new(150, 10)));
        assert!(!s.overlaps(Extent::new(0, 100)));
        assert_eq!(s.containing(120), Some(Extent::new(100, 50)));
        assert_eq!(s.containing(99), None);
        assert_eq!(s.max_end(), 150);
    }

    #[test]
    fn overlapping_clips() {
        let mut s = ExtentSet::new();
        s.insert(Extent::new(0, 10));
        s.insert(Extent::new(20, 10));
        let hits = s.overlapping(Extent::new(5, 20));
        assert_eq!(hits, vec![Extent::new(5, 5), Extent::new(20, 5)]);
    }
}
