//! Seeded simulated network connecting replication nodes.
//!
//! A [`NetModel`] is a pure function of (seed, link, message id): the
//! same question always gets the same answer, so cluster runs are fully
//! deterministic without any mutable RNG state. Three effects compose:
//!
//! * **Per-link latency jitter** — each one-way delivery takes the base
//!   link latency plus a seeded jitter of up to a quarter of the base.
//!   Keeping the jitter proportional to the base preserves cross-cell
//!   monotonicity: a sweep over link latencies can assert that measured
//!   recovery times grow with the link, jitter notwithstanding.
//! * **Drops with retransmit** — a seeded per-message drop probability
//!   (in permille). Each consecutive drop charges one retransmit
//!   timeout (four base latencies) before the resend; delivery is
//!   delayed, never lost, modelling a reliable transport over a lossy
//!   link.
//! * **Partitions and kills** — a [`ClusterFaultPlan`] schedule. A
//!   partitioned sender holds its message until the window heals; a
//!   message reaching a partitioned receiver is buffered by the network
//!   and released at heal time. Never-healing partitions and killed
//!   receivers make delivery `None`.
//!
//! Reordering emerges naturally: consecutive messages on one link draw
//! independent jitter, so a later message can carry a smaller delay.
//! Receivers that need ordering (WAL shipping does) hold back
//! out-of-order frames; the model deliberately does not resequence.

use crate::fault::{mix, ClusterFaultPlan};

/// Retransmit timeout as a multiple of the base one-way latency.
const RETRANSMIT_TIMEOUT_FACTOR: u64 = 4;

/// Retransmit attempts before the model gives up jittering and delivers
/// anyway (a reliable transport never loses the message for good).
const MAX_RETRANSMITS: u64 = 8;

/// Deterministic cluster network: seeded per-link latency, drops with
/// retransmit penalties, and a partition/kill schedule.
#[derive(Clone, Debug)]
pub struct NetModel {
    seed: u64,
    base_latency_ns: u64,
    drop_permille: u64,
    faults: ClusterFaultPlan,
}

impl NetModel {
    /// A lossless network with the given seed and base one-way latency.
    pub fn new(seed: u64, base_latency_ns: u64) -> Self {
        NetModel {
            seed,
            base_latency_ns: base_latency_ns.max(1),
            drop_permille: 0,
            faults: ClusterFaultPlan::new(),
        }
    }

    /// Base one-way link latency, ns.
    pub fn base_latency_ns(&self) -> u64 {
        self.base_latency_ns
    }

    /// Sets the per-message drop probability in permille (clamped to
    /// 999 — a lossy link, not a severed one; use partitions for that).
    pub fn set_drop_permille(&mut self, permille: u64) {
        self.drop_permille = permille.min(999);
    }

    /// The installed cluster fault schedule.
    pub fn faults(&self) -> &ClusterFaultPlan {
        &self.faults
    }

    /// Mutable access to the cluster fault schedule.
    pub fn faults_mut(&mut self) -> &mut ClusterFaultPlan {
        &mut self.faults
    }

    /// Stable per-(link, message) hash feeding every sampled quantity.
    fn link_hash(&self, from: usize, to: usize, msg_id: u64) -> u64 {
        let link = ((from as u64) << 32) ^ (to as u64);
        mix(self.seed ^ mix(link) ^ msg_id.rotate_left(17))
    }

    /// One-way latency for a message on `from -> to`, ns: base latency,
    /// plus seeded jitter bounded by a quarter of the base, plus one
    /// retransmit timeout per seeded consecutive drop. Pure — the same
    /// arguments always sample the same latency.
    pub fn sample_latency_ns(&self, from: usize, to: usize, msg_id: u64) -> u64 {
        let h = self.link_hash(from, to, msg_id);
        let jitter = h % (self.base_latency_ns / 4 + 1);
        let mut penalty = 0u64;
        if self.drop_permille > 0 {
            for attempt in 0..MAX_RETRANSMITS {
                if mix(h ^ attempt) % 1000 < self.drop_permille {
                    penalty += RETRANSMIT_TIMEOUT_FACTOR * self.base_latency_ns;
                } else {
                    break;
                }
            }
        }
        self.base_latency_ns + jitter + penalty
    }

    /// Arrival time of a message sent on `from -> to` at `send_ns`, or
    /// `None` when it can never arrive (a never-healing partition on
    /// either endpoint, or the receiver already killed at arrival). A
    /// partitioned sender departs at its heal time; a delivery into a
    /// receiver's partition window is released when the window closes.
    pub fn delivery_ns(&self, from: usize, to: usize, msg_id: u64, send_ns: u64) -> Option<u64> {
        let depart = self.faults.heal_ns(from, send_ns)?;
        let arrive = depart.saturating_add(self.sample_latency_ns(from, to, msg_id));
        let released = self.faults.heal_ns(to, arrive)?;
        if self.faults.killed_at(to, released) {
            return None;
        }
        Some(released)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_is_pure_and_jitter_bounded() {
        let net = NetModel::new(0xFEED, 1_000_000);
        for msg in 0..200u64 {
            let a = net.sample_latency_ns(0, 1, msg);
            assert_eq!(a, net.sample_latency_ns(0, 1, msg), "sampling must be pure");
            assert!(a >= 1_000_000);
            assert!(a <= 1_250_000, "jitter above base/4: {a}");
        }
        // Different messages actually jitter (the link is not constant).
        let spread: std::collections::BTreeSet<u64> = (0..200u64)
            .map(|m| net.sample_latency_ns(0, 1, m))
            .collect();
        assert!(
            spread.len() > 10,
            "jitter degenerate: {} values",
            spread.len()
        );
    }

    #[test]
    fn reordering_emerges_from_jitter() {
        let net = NetModel::new(7, 1_000_000);
        // Two messages sent 1us apart: find a pair where the later one
        // arrives first. With ~250us of jitter this must happen quickly.
        let mut reordered = false;
        for m in 0..100u64 {
            let first = net.delivery_ns(0, 1, m, 0).unwrap();
            let second = net.delivery_ns(0, 1, m + 1, 1_000).unwrap();
            if second < first {
                reordered = true;
                break;
            }
        }
        assert!(reordered, "no reordering across 100 message pairs");
    }

    #[test]
    fn drops_add_retransmit_penalties() {
        let mut lossy = NetModel::new(3, 100_000);
        lossy.set_drop_permille(400);
        let clean = NetModel::new(3, 100_000);
        let penalized = (0..500u64)
            .filter(|&m| lossy.sample_latency_ns(0, 1, m) > clean.sample_latency_ns(0, 1, m))
            .count();
        assert!(
            penalized > 100,
            "40% drop rate penalized only {penalized}/500"
        );
        // Penalties come in whole retransmit timeouts.
        for m in 0..500u64 {
            let delta = lossy.sample_latency_ns(0, 1, m) - clean.sample_latency_ns(0, 1, m);
            assert_eq!(delta % (RETRANSMIT_TIMEOUT_FACTOR * 100_000), 0);
        }
    }

    #[test]
    fn partitions_hold_and_release_messages() {
        let mut net = NetModel::new(9, 1_000);
        net.faults_mut().partition(1, 0, 1_000_000);
        // Receiver partitioned: buffered until the window closes.
        let d = net.delivery_ns(0, 1, 1, 0).unwrap();
        assert_eq!(d, 1_000_000);
        // Sender partitioned: departs at heal, then takes link latency.
        let d = net.delivery_ns(1, 0, 2, 500).unwrap();
        assert!(d >= 1_000_000 + 1_000);
        // After the window, normal delivery.
        let d = net.delivery_ns(0, 1, 3, 2_000_000).unwrap();
        assert!((2_001_000..=2_001_250).contains(&d));
    }

    #[test]
    fn dead_endpoints_never_deliver() {
        let mut net = NetModel::new(11, 1_000);
        net.faults_mut().partition(2, 0, u64::MAX);
        assert_eq!(net.delivery_ns(0, 2, 1, 0), None);
        assert_eq!(net.delivery_ns(2, 0, 1, 0), None);
        net.faults_mut().kill(1, 5_000);
        assert!(
            net.delivery_ns(0, 1, 1, 0).is_some(),
            "arrives before the kill"
        );
        assert_eq!(net.delivery_ns(0, 1, 1, 10_000), None, "receiver dead");
    }
}
