//! Physical-layout trace recording, used to regenerate the paper's data
//! layout figures (Fig. 2 and Fig. 11: SSTable/set placement per
//! compaction) and Fig. 13 (dynamic band layout).

use crate::extent::Extent;
use crate::stats::IoKind;

/// Direction of a traced access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceDir {
    /// A host read.
    Read,
    /// A host write.
    Write,
    /// A free/invalidate of previously written space.
    Free,
}

/// One traced physical access. `tag` groups events (the figure harnesses
/// use the compaction sequence number); `file` identifies the SSTable.
#[derive(Clone, Copy, Debug)]
pub struct TraceEvent {
    /// Grouping tag (compaction id in the layout figures).
    pub tag: u64,
    /// File (SSTable) id, or 0 when not applicable.
    pub file: u64,
    /// Physical extent accessed.
    pub ext: Extent,
    /// Read, write or free.
    pub dir: TraceDir,
    /// I/O classification (layout figures filter on flush/compaction).
    pub kind: IoKind,
}

/// An append-only recorder of physical accesses. Disabled by default so
/// the hot path pays only a branch.
#[derive(Debug, Default)]
pub struct TraceRecorder {
    enabled: bool,
    events: Vec<TraceEvent>,
}

impl TraceRecorder {
    /// Creates a disabled recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enables or disables recording.
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Whether recording is active.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records one event if enabled.
    pub fn record(&mut self, tag: u64, file: u64, ext: Extent, dir: TraceDir, kind: IoKind) {
        if self.enabled {
            self.events.push(TraceEvent {
                tag,
                file,
                ext,
                dir,
                kind,
            });
        }
    }

    /// All recorded events in order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Drops all recorded events.
    pub fn clear(&mut self) {
        self.events.clear();
    }

    /// Write events with the given tag.
    pub fn writes_for_tag(&self, tag: u64) -> Vec<TraceEvent> {
        self.events
            .iter()
            .filter(|e| e.tag == tag && e.dir == TraceDir::Write)
            .copied()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_records_nothing() {
        let mut t = TraceRecorder::new();
        t.record(1, 2, Extent::new(0, 10), TraceDir::Write, IoKind::Raw);
        assert!(t.events().is_empty());
    }

    #[test]
    fn enabled_records_and_filters() {
        let mut t = TraceRecorder::new();
        t.set_enabled(true);
        t.record(1, 10, Extent::new(0, 10), TraceDir::Write, IoKind::Flush);
        t.record(1, 11, Extent::new(10, 10), TraceDir::Read, IoKind::Get);
        t.record(
            2,
            12,
            Extent::new(20, 10),
            TraceDir::Write,
            IoKind::CompactionWrite,
        );
        assert_eq!(t.events().len(), 3);
        let w1 = t.writes_for_tag(1);
        assert_eq!(w1.len(), 1);
        assert_eq!(w1[0].file, 10);
        t.clear();
        assert!(t.events().is_empty());
    }
}
