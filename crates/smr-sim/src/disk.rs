//! The simulated disk: one backing store, one mechanical time model, and
//! one of four layouts:
//!
//! * [`Layout::Hdd`] — a conventional drive; any write anywhere.
//! * [`Layout::FixedBand`] — a conventional SMR drive with fixed-size
//!   bands. Appending at a band's write pointer (or continuing a
//!   just-written run) is free of penalty; any other write forces a
//!   read-modify-write of the band's written prefix, which is how the
//!   auxiliary write amplification (AWA) of the paper's §II-C arises.
//! * [`Layout::RawHmSmr`] — the paper's primitive host-managed drive
//!   (Caveat-Scriptor style): writes may land anywhere but must never
//!   overlap valid data, and the shingle-direction damage window of
//!   `guard_bytes` following a write must not contain valid data. The
//!   disk *faults* instead of corrupting, so tests can prove SEALDB's
//!   dynamic band manager honours the contract.
//! * [`Layout::HaSmr`] — a host-aware drive: fixed bands plus a
//!   persistent media cache absorbing out-of-order writes, drained by a
//!   stop-the-world cleaning pass (the paper's §II-C bimodality).

use crate::audit::ShingleAuditor;
use crate::error::{DiskError, DiskResult};
use crate::extent::{Extent, ExtentSet};
use crate::fault::{FaultPlan, WriteFault};
use crate::obs::{Obs, ObsEventKind, ObsLayer};
use crate::stats::{IoKind, IoStats};
use crate::store::SparseStore;
use crate::timemodel::TimeModel;
use crate::trace::{TraceDir, TraceRecorder};
use std::collections::BTreeMap;

/// Controller/cache overhead charged to conventional-zone writes (WAL,
/// manifest, filesystem journal), which drives absorb in their write
/// cache without repositioning the data head.
const CONV_WRITE_OVERHEAD_NS: u64 = 200_000;

/// Number of read-ahead segments the drive's track buffer tracks.
/// Reads continuing any live segment cost pure transfer (the data was
/// prefetched), matching real drives' segmented caches. With more
/// concurrent sequential streams than segments, replacement is random,
/// so the hit rate degrades to segments/streams instead of collapsing
/// to zero as strict LRU would — this is the mechanism that makes
/// many-way merges (SMRDB's overlapping level 0) pay near-random-read
/// cost, the paper's 701-second compactions.
const READ_SEGMENTS: usize = 6;

/// On-disk data organisation.
#[derive(Clone, Copy, Debug)]
pub enum Layout {
    /// Conventional (non-shingled) drive.
    Hdd,
    /// Conventional SMR drive with fixed bands of `band_size` bytes.
    FixedBand {
        /// Size of each physical band in bytes.
        band_size: u64,
    },
    /// Raw host-managed SMR: shingled tracks only, no fixed bands.
    RawHmSmr {
        /// Bytes damaged in the shingle direction past a write's end.
        guard_bytes: u64,
    },
    /// Host-aware SMR: fixed bands plus a persistent media cache that
    /// absorbs non-sequential writes; a background cleaning pass
    /// read-modify-writes every dirty band once the cache fills. This is
    /// the drive class the paper's SII-C dismisses: "cache cleaning
    /// processes induce large latency as well as write amplification and
    /// bring a bimodal behavior".
    HaSmr {
        /// Size of each physical band in bytes.
        band_size: u64,
        /// Persistent media-cache capacity in bytes.
        media_cache_bytes: u64,
    },
}

/// Per-band write state for the fixed-band layout.
#[derive(Clone, Copy, Debug, Default)]
struct BandState {
    /// High-water mark of written bytes within the band.
    wp: u64,
    /// Absolute offset at which a sequential continuation may proceed
    /// without a new read-modify-write. `u64::MAX` = none.
    cursor: u64,
}

/// A copy-on-write image of a disk's persistent state at one write
/// boundary: contents, valid-extent set, band write pointers and
/// media-cache occupancy. Cheap to take (chunks are shared until
/// modified) so the crash-point harness can capture one every Kth write
/// and later "power-cut" the disk back to it with [`Disk::restore`].
///
/// Volatile state — the simulated clock, statistics, traces and the
/// read-ahead segments — is deliberately *not* part of the image: a
/// power cut does not rewind time.
#[derive(Debug, Clone)]
pub struct DiskSnapshot {
    write_index: u64,
    store: SparseStore,
    valid: ExtentSet,
    bands: BTreeMap<u64, BandState>,
    cache_used: u64,
    dirty_bands: BTreeMap<u64, u64>,
}

impl DiskSnapshot {
    /// Number of writes the disk had completed when this image was taken.
    pub fn write_index(&self) -> u64 {
        self.write_index
    }
}

/// A simulated disk.
#[derive(Debug)]
pub struct Disk {
    capacity: u64,
    layout: Layout,
    model: TimeModel,
    store: SparseStore,
    clock_ns: u64,
    head: u64,
    stats: IoStats,
    trace: TraceRecorder,
    /// Valid (readable) data. For `RawHmSmr` this is the layout-enforcing
    /// set; for the other layouts it guards against use-after-free reads.
    valid: ExtentSet,
    bands: BTreeMap<u64, BandState>,
    trace_tag: u64,
    trace_file: u64,
    /// Read-ahead segments: end offsets of live streams (random
    /// replacement).
    read_streams: Vec<u64>,
    /// Deterministic replacement state.
    stream_rr: u64,
    /// HA-SMR: bytes currently staged in the media cache.
    cache_used: u64,
    /// HA-SMR: dirty bands (band start -> highest staged end within).
    dirty_bands: BTreeMap<u64, u64>,
    /// HA-SMR: completed cleaning passes.
    cleanings: u64,
    /// Fault injection: remaining writes before the disk starts failing.
    writes_until_failure: Option<u64>,
    /// Seeded fault-injection plan (torn writes, read corruption,
    /// transient read errors, snapshot cadence).
    faults: FaultPlan,
    /// Successfully completed writes, driving the snapshot cadence.
    write_index: u64,
    /// Automatic crash-point snapshots pending collection.
    auto_snaps: Vec<DiskSnapshot>,
    /// Unified observability sink shared by every layer above. Volatile:
    /// like the statistics, it is not rolled back by [`Disk::restore`].
    obs: Obs,
    /// Debug-build shadow check of the raw HM-SMR shingle contract.
    /// `None` in release builds and for every other layout.
    auditor: Option<ShingleAuditor>,
}

impl Disk {
    /// Creates a disk of `capacity` bytes with the given layout and model.
    pub fn new(capacity: u64, layout: Layout, model: TimeModel) -> Self {
        if let Layout::FixedBand { band_size } = layout {
            assert!(band_size > 0, "band size must be positive");
        }
        let auditor = match layout {
            Layout::RawHmSmr { guard_bytes } if cfg!(debug_assertions) => {
                Some(ShingleAuditor::new(capacity, guard_bytes))
            }
            _ => None,
        };
        Disk {
            capacity,
            layout,
            model,
            auditor,
            store: SparseStore::new(),
            clock_ns: 0,
            head: 0,
            stats: IoStats::new(),
            trace: TraceRecorder::new(),
            valid: ExtentSet::new(),
            bands: BTreeMap::new(),
            trace_tag: 0,
            trace_file: 0,
            read_streams: Vec::new(),
            stream_rr: 0x9E3779B97F4A7C15,
            cache_used: 0,
            dirty_bands: BTreeMap::new(),
            cleanings: 0,
            writes_until_failure: None,
            faults: FaultPlan::default(),
            write_index: 0,
            auto_snaps: Vec::new(),
            obs: Obs::new(),
        }
    }

    /// Disk capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// The configured layout.
    pub fn layout(&self) -> Layout {
        self.layout
    }

    /// Band size, when the layout has fixed bands.
    pub fn band_size(&self) -> Option<u64> {
        match self.layout {
            Layout::FixedBand { band_size } | Layout::HaSmr { band_size, .. } => Some(band_size),
            _ => None,
        }
    }

    /// HA-SMR: bytes currently staged in the media cache.
    pub fn media_cache_used(&self) -> u64 {
        self.cache_used
    }

    /// HA-SMR: number of cleaning passes performed.
    pub fn cleaning_passes(&self) -> u64 {
        self.cleanings
    }

    /// Simulated time elapsed since creation, nanoseconds.
    pub fn clock_ns(&self) -> u64 {
        self.clock_ns
    }

    /// Advances the clock without I/O (models CPU work if desired).
    pub fn advance_ns(&mut self, ns: u64) {
        self.clock_ns += ns;
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &IoStats {
        &self.stats
    }

    /// Mutable statistics (the KV store credits `user_payload` here).
    pub fn stats_mut(&mut self) -> &mut IoStats {
        &mut self.stats
    }

    /// The unified observability sink (metrics registry, latency
    /// histograms, event tracer). All layers above the disk account here
    /// via `FileStore::disk_mut()`, so one store has exactly one sink.
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Mutable observability sink.
    pub fn obs_mut(&mut self) -> &mut Obs {
        &mut self.obs
    }

    /// Records a trace event stamped with the current simulated time.
    pub fn obs_event(&mut self, layer: ObsLayer, kind: ObsEventKind, a: u64, b: u64) {
        let t = self.clock_ns;
        self.obs.event(t, layer, kind, a, b);
    }

    /// The trace recorder.
    pub fn trace(&self) -> &TraceRecorder {
        &self.trace
    }

    /// Mutable trace recorder (enable/clear).
    pub fn trace_mut(&mut self) -> &mut TraceRecorder {
        &mut self.trace
    }

    /// Sets the grouping tag stamped on subsequent traced accesses.
    pub fn set_trace_tag(&mut self, tag: u64) {
        self.trace_tag = tag;
    }

    /// Sets the file id stamped on subsequent traced accesses.
    pub fn set_trace_file(&mut self, file: u64) {
        self.trace_file = file;
    }

    /// Snapshot of the valid-data extents (address order).
    pub fn valid_extents(&self) -> Vec<Extent> {
        self.valid.iter().collect()
    }

    /// Total valid bytes on the disk.
    pub fn valid_bytes(&self) -> u64 {
        self.valid.covered_bytes()
    }

    /// Highest end offset of any valid extent.
    pub fn valid_high_water(&self) -> u64 {
        self.valid.max_end()
    }

    /// Number of distinct fixed bands an extent touches (1 for other
    /// layouts). Used by the Fig. 3(a) analysis.
    pub fn bands_touched(&self, ext: Extent) -> u64 {
        match self.layout {
            Layout::FixedBand { band_size } | Layout::HaSmr { band_size, .. }
                if !ext.is_empty() =>
            {
                let first = ext.offset / band_size;
                let last = (ext.end() - 1) / band_size;
                last - first + 1
            }
            _ => 1,
        }
    }

    /// Fault injection: after `n` more successful writes every further
    /// write fails with [`DiskError::Injected`], modelling a crash or a
    /// dying drive. `None` disables injection.
    pub fn fail_writes_after(&mut self, n: Option<u64>) {
        self.writes_until_failure = n;
    }

    /// The installed fault-injection plan.
    pub fn faults(&self) -> &FaultPlan {
        &self.faults
    }

    /// Mutable access to the fault-injection plan (arm/disarm faults).
    pub fn faults_mut(&mut self) -> &mut FaultPlan {
        &mut self.faults
    }

    /// Number of writes completed successfully since creation. Torn or
    /// refused writes do not count; this is the index auto-snapshots and
    /// crash-point sweeps are keyed on.
    pub fn writes_issued(&self) -> u64 {
        self.write_index
    }

    /// Takes a copy-on-write snapshot of the disk's persistent state.
    pub fn snapshot(&self) -> DiskSnapshot {
        DiskSnapshot {
            write_index: self.write_index,
            store: self.store.clone(),
            valid: self.valid.clone(),
            bands: self.bands.clone(),
            cache_used: self.cache_used,
            dirty_bands: self.dirty_bands.clone(),
        }
    }

    /// Restores the disk's persistent state from `snap`, as if power was
    /// cut right after the snapshot's write and the machine rebooted.
    /// The clock and statistics keep advancing monotonically (a crash
    /// does not rewind time); the read-ahead segments are cold again.
    pub fn restore(&mut self, snap: &DiskSnapshot) {
        self.store = snap.store.clone();
        self.valid = snap.valid.clone();
        self.bands = snap.bands.clone();
        self.cache_used = snap.cache_used;
        self.dirty_bands = snap.dirty_bands.clone();
        self.write_index = snap.write_index;
        self.read_streams.clear();
        self.head = 0;
        // The valid set was rolled back wholesale; resync the shadow
        // model to the restored state.
        if let Some(aud) = self.auditor.as_mut() {
            aud.reset_to(self.valid.iter());
        }
    }

    /// Drains the automatic crash-point snapshots accumulated so far
    /// (enabled via [`FaultPlan::snapshot_every`]).
    pub fn take_crash_snapshots(&mut self) -> Vec<DiskSnapshot> {
        std::mem::take(&mut self.auto_snaps)
    }

    fn consume_write_budget(&mut self) -> DiskResult<()> {
        if let Some(left) = self.writes_until_failure.as_mut() {
            if *left == 0 {
                self.stats.faults.injected_write_failures += 1;
                self.obs_event(ObsLayer::Device, ObsEventKind::InjectedWriteFailure, 0, 0);
                return Err(DiskError::Injected);
            }
            *left -= 1;
        }
        Ok(())
    }

    /// Bookkeeping after a successful host write: advances the write
    /// index and captures an automatic snapshot when one is due.
    fn note_write_complete(&mut self) {
        self.write_index += 1;
        if self.faults.snapshot_due(self.write_index) {
            self.auto_snaps.push(self.snapshot());
        }
    }

    /// Performs an injected torn write: only `persist` bytes of the
    /// extent reach the platter, yet the whole extent is marked valid —
    /// the drive acknowledged sectors it never persisted, so the stale
    /// suffix must be caught by host-side checksums, not by a device
    /// error. Bypasses layout legality checks (the engine only issues
    /// layout-legal writes; the fault models the *device* dying
    /// mid-transfer, not the host misbehaving).
    fn perform_torn_write(&mut self, ext: Extent, data: &[u8], persist: u64) -> DiskResult<()> {
        if persist > 0 {
            self.store.write(ext.offset, &data[..persist as usize]);
        }
        self.valid.insert(ext);
        self.stats.faults.torn_writes += 1;
        self.obs_event(
            ObsLayer::Device,
            ObsEventKind::TornWrite,
            ext.offset,
            persist,
        );
        Err(DiskError::TornWrite { ext })
    }

    fn check_range(&self, ext: Extent) -> DiskResult<()> {
        if ext.end() > self.capacity {
            return Err(DiskError::OutOfRange {
                ext,
                capacity: self.capacity,
            });
        }
        Ok(())
    }

    /// Reads an extent. The extent must be entirely valid (written and not
    /// invalidated since).
    pub fn read(&mut self, ext: Extent, kind: IoKind) -> DiskResult<Vec<u8>> {
        self.check_range(ext)?;
        if !self.valid.covers(ext) {
            return Err(DiskError::ReadUnwritten { ext });
        }
        // Persistent faults dominate: a latent sector error fails the
        // read before any transient budget is consumed, so retrying the
        // same extent keeps failing exactly the same way.
        if self.faults.persistent_fault(ext) {
            self.stats.faults.unrecoverable_reads += 1;
            self.obs_event(
                ObsLayer::Device,
                ObsEventKind::UnrecoverableRead,
                ext.offset,
                ext.len,
            );
            return Err(DiskError::UnrecoverableRead { ext });
        }
        if self.faults.on_read(ext) {
            self.stats.faults.transient_read_errors += 1;
            self.obs_event(
                ObsLayer::Device,
                ObsEventKind::TransientReadError,
                ext.offset,
                ext.len,
            );
            return Err(DiskError::TransientRead { ext });
        }
        // Segmented read-ahead: a read continuing a live stream is served
        // from the track buffer at transfer speed.
        let stream_hit = self.read_streams.iter().position(|&end| end == ext.offset);
        let t = match stream_hit {
            Some(idx) => {
                self.read_streams[idx] = ext.end();
                TimeModel::xfer_ns(ext.len, self.model.read_bps)
            }
            None => {
                let (t, _) = self.model.read_time(self.head, ext.offset, ext.len);
                if self.head != ext.offset {
                    self.stats.seeks += 1;
                }
                if self.read_streams.len() < READ_SEGMENTS {
                    self.read_streams.push(ext.end());
                } else {
                    // Random replacement keeps partial hit rates under
                    // stream counts above the segment budget.
                    self.stream_rr ^= self.stream_rr << 13;
                    self.stream_rr ^= self.stream_rr >> 7;
                    self.stream_rr ^= self.stream_rr << 17;
                    let slot = (self.stream_rr % READ_SEGMENTS as u64) as usize;
                    self.read_streams[slot] = ext.end();
                }
                t
            }
        };
        // Fail-slow region: the read completes, but at a multiple of its
        // modelled service time — visible only in latency accounting.
        let slow = self.faults.fail_slow_factor(ext);
        let t = if slow > 1 {
            self.stats.faults.fail_slow_reads += 1;
            self.obs_event(
                ObsLayer::Device,
                ObsEventKind::FailSlowRead,
                ext.offset,
                slow,
            );
            t * slow
        } else {
            t
        };
        self.head = ext.end();
        self.clock_ns += t;
        self.stats.record_read(kind, ext.len, ext.len, t);
        self.obs.latency(ObsLayer::Device, "read_ns", t);
        self.trace
            .record(self.trace_tag, self.trace_file, ext, TraceDir::Read, kind);
        let mut buf = self.store.read_vec(ext.offset, ext.len as usize);
        if self.faults.corrupt_buf(ext, &mut buf) > 0 {
            self.stats.faults.read_corruptions += 1;
            self.obs_event(
                ObsLayer::Device,
                ObsEventKind::ReadCorruption,
                ext.offset,
                ext.len,
            );
        }
        Ok(buf)
    }

    /// Writes `data` at `ext` (lengths must match). Layout rules apply; see
    /// the type-level docs.
    pub fn write(&mut self, ext: Extent, data: &[u8], kind: IoKind) -> DiskResult<()> {
        assert_eq!(ext.len as usize, data.len(), "extent/data length mismatch");
        self.check_range(ext)?;
        if ext.is_empty() {
            return Ok(());
        }
        self.consume_write_budget()?;
        match self.faults.on_write(ext.len) {
            WriteFault::None => {}
            WriteFault::Torn { persist } => return self.perform_torn_write(ext, data, persist),
            WriteFault::PowerLost => {
                self.stats.faults.injected_write_failures += 1;
                self.obs_event(
                    ObsLayer::Device,
                    ObsEventKind::InjectedWriteFailure,
                    ext.offset,
                    ext.len,
                );
                return Err(DiskError::Injected);
            }
        }
        let t0 = self.clock_ns;
        match self.layout {
            Layout::Hdd => self.write_hdd(ext, data, kind),
            Layout::FixedBand { band_size } => self.write_fixed_band(ext, data, kind, band_size),
            Layout::RawHmSmr { guard_bytes } => self.write_raw(ext, data, kind, guard_bytes),
            Layout::HaSmr {
                band_size,
                media_cache_bytes,
            } => self.write_ha_smr(ext, data, kind, band_size, media_cache_bytes),
        }?;
        let dt = self.clock_ns - t0;
        self.obs.latency(ObsLayer::Device, "write_ns", dt);
        self.note_write_complete();
        Ok(())
    }

    fn write_ha_smr(
        &mut self,
        ext: Extent,
        data: &[u8],
        kind: IoKind,
        band_size: u64,
        media_cache_bytes: u64,
    ) -> DiskResult<()> {
        let mut off = ext.offset;
        let mut rest = data;
        while !rest.is_empty() {
            let band_start = off / band_size * band_size;
            let within = off - band_start;
            let n = rest.len().min((band_size - within) as usize);
            let band = self.bands.entry(band_start).or_insert_with(|| BandState {
                wp: 0,
                cursor: u64::MAX,
            });
            let sequential = within >= band.wp || off == band.cursor;
            if sequential {
                // In-order writes stream straight to the band.
                let (t, new_head) = self.model.write_time(self.head, off, n as u64);
                if self.head != off {
                    self.stats.seeks += 1;
                }
                self.head = new_head;
                self.clock_ns += t;
                self.stats.record_write(kind, n as u64, n as u64, t);
                band.wp = band.wp.max(within + n as u64);
                band.cursor = off + n as u64;
            } else {
                // Out-of-order: absorb into the persistent media cache.
                if self.cache_used + n as u64 > media_cache_bytes {
                    self.clean_media_cache(kind);
                }
                let t = CONV_WRITE_OVERHEAD_NS + TimeModel::xfer_ns(n as u64, self.model.write_bps);
                self.clock_ns += t;
                self.stats.record_write(kind, n as u64, n as u64, t);
                self.cache_used += n as u64;
                let entry = self.dirty_bands.entry(band_start).or_insert(0);
                *entry = (*entry).max(within + n as u64);
            }
            self.store.write(off, &rest[..n]);
            self.valid.insert(Extent::new(off, n as u64));
            off += n as u64;
            rest = &rest[n..];
        }
        self.trace
            .record(self.trace_tag, self.trace_file, ext, TraceDir::Write, kind);
        Ok(())
    }

    /// Drains the media cache: every dirty band pays a staged
    /// read-modify-write. This is the paper's "cache cleaning" stall —
    /// all foreground progress waits behind it.
    fn clean_media_cache(&mut self, kind: IoKind) {
        // BTreeMap iterates in band order, so the drain is already the
        // elevator-sorted cleaning schedule.
        let dirty: Vec<(u64, u64)> = std::mem::take(&mut self.dirty_bands).into_iter().collect();
        let t_start = self.clock_ns;
        let band_count = dirty.len() as u64;
        let mut moved = 0u64;
        for (band_start, staged_end) in dirty {
            let band = self.bands.entry(band_start).or_insert_with(|| BandState {
                wp: 0,
                cursor: u64::MAX,
            });
            let preserve = band.wp;
            let rewrite = band.wp.max(staged_end);
            let mut t = self.model.seek_ns(self.head, band_start) + self.model.rot_latency_ns;
            t += TimeModel::xfer_ns(preserve, self.model.read_bps);
            t += self.model.rot_latency_ns;
            t += TimeModel::xfer_ns(rewrite, self.model.write_bps);
            self.stats.seeks += 1;
            self.stats.band_rmw_events += 1;
            self.head = band_start + rewrite;
            self.clock_ns += t;
            self.stats.record_write(kind, 0, rewrite, t);
            self.stats.record_device_read_overhead(kind, preserve);
            moved += rewrite;
            band.wp = rewrite;
            band.cursor = u64::MAX;
        }
        self.cache_used = 0;
        self.cleanings += 1;
        self.obs
            .counter_add(ObsLayer::Device, "media_cache_cleanings", 1);
        self.obs.latency(
            ObsLayer::Device,
            "cleaning_stall_ns",
            self.clock_ns - t_start,
        );
        self.obs_event(
            ObsLayer::Device,
            ObsEventKind::MediaCacheClean,
            band_count,
            moved,
        );
    }

    fn write_hdd(&mut self, ext: Extent, data: &[u8], kind: IoKind) -> DiskResult<()> {
        let (t, new_head) = self.model.write_time(self.head, ext.offset, ext.len);
        if self.head != ext.offset {
            self.stats.seeks += 1;
        }
        self.head = new_head;
        self.clock_ns += t;
        self.stats.record_write(kind, ext.len, ext.len, t);
        self.store.write(ext.offset, data);
        self.valid.insert(ext);
        self.trace
            .record(self.trace_tag, self.trace_file, ext, TraceDir::Write, kind);
        Ok(())
    }

    fn write_raw(
        &mut self,
        ext: Extent,
        data: &[u8],
        kind: IoKind,
        guard_bytes: u64,
    ) -> DiskResult<()> {
        if let Some(hit) = self.valid.overlapping(ext).first() {
            return Err(DiskError::WouldOverlapValid { ext, valid: *hit });
        }
        let dmg_len = guard_bytes.min(self.capacity - ext.end());
        let dmg = Extent::new(ext.end(), dmg_len);
        if let Some(hit) = self.valid.overlapping(dmg).first() {
            return Err(DiskError::GuardViolation { ext, damaged: *hit });
        }
        // Shadow-check the accepted write against the independent audit
        // model: if the overlap/guard checks above ever let an illegal
        // write through, this fires in debug builds.
        if let Some(aud) = self.auditor.as_mut() {
            aud.record_write(ext);
        }
        let (t, new_head) = self.model.write_time(self.head, ext.offset, ext.len);
        if self.head != ext.offset {
            self.stats.seeks += 1;
        }
        self.head = new_head;
        self.clock_ns += t;
        self.stats.record_write(kind, ext.len, ext.len, t);
        self.store.write(ext.offset, data);
        self.valid.insert(ext);
        self.trace
            .record(self.trace_tag, self.trace_file, ext, TraceDir::Write, kind);
        Ok(())
    }

    fn write_fixed_band(
        &mut self,
        ext: Extent,
        data: &[u8],
        kind: IoKind,
        band_size: u64,
    ) -> DiskResult<()> {
        // Split the write at band boundaries; each piece is serviced
        // against its own band's state.
        let mut off = ext.offset;
        let mut rest = data;
        while !rest.is_empty() {
            let band_idx = off / band_size;
            let band_start = band_idx * band_size;
            let within = off - band_start;
            let n = rest.len().min((band_size - within) as usize);
            self.write_band_piece(
                Extent::new(off, n as u64),
                &rest[..n],
                kind,
                band_start,
                within,
                band_size,
            );
            off += n as u64;
            rest = &rest[n..];
        }
        self.trace
            .record(self.trace_tag, self.trace_file, ext, TraceDir::Write, kind);
        Ok(())
    }

    fn write_band_piece(
        &mut self,
        ext: Extent,
        data: &[u8],
        kind: IoKind,
        band_start: u64,
        within: u64,
        band_size: u64,
    ) {
        let band = self.bands.entry(band_start).or_insert_with(|| BandState {
            wp: 0,
            cursor: u64::MAX,
        });
        // Writing at or past the write pointer damages nothing (only
        // unwritten shingles follow); continuing a just-written run is a
        // buffered sequential pass. Only a write *below* the write
        // pointer forces the drive to read-modify-write the damaged
        // suffix [offset, wp) of the band.
        let safe = within >= band.wp || ext.offset == band.cursor;
        if safe {
            let (t, new_head) = self.model.write_time(self.head, ext.offset, ext.len);
            if self.head != ext.offset {
                self.stats.seeks += 1;
            }
            self.head = new_head;
            self.clock_ns += t;
            self.stats.record_write(kind, ext.len, ext.len, t);
        } else {
            // Read-modify-write: per the Skylight/HA-SMR characterisations
            // the drive stages the whole written band prefix, merges the
            // new data, and rewrites it to restore the shingle order —
            // reading [0, wp) and writing [0, max(wp, within + len)).
            let preserve = band.wp;
            let rewrite = band.wp.max(within + ext.len);
            let mut t = self.model.seek_ns(self.head, band_start) + self.model.rot_latency_ns;
            t += TimeModel::xfer_ns(preserve, self.model.read_bps);
            t += self.model.rot_latency_ns; // settle before the rewrite pass
            t += TimeModel::xfer_ns(rewrite, self.model.write_bps);
            self.stats.seeks += 1;
            self.stats.band_rmw_events += 1;
            self.head = band_start + rewrite;
            self.clock_ns += t;
            self.stats.record_write(kind, ext.len, rewrite, t);
            self.stats.record_device_read_overhead(kind, preserve);
            self.obs
                .counter_add(ObsLayer::Device, "band_rmw_bytes", rewrite);
            self.obs_event(
                ObsLayer::Device,
                ObsEventKind::BandRmw,
                band_start / band_size,
                rewrite,
            );
        }
        let band = self.bands.get_mut(&band_start).expect("band just touched");
        band.wp = band.wp.max(within + ext.len);
        band.cursor = ext.offset + ext.len;
        self.store.write(ext.offset, data);
        self.valid.insert(ext);
    }

    /// Writes bypassing the shingle layout rules, as if to a conventional
    /// (unshingled) zone. Real HM-SMR drives expose a small conventional
    /// region for metadata; the engines use it for WAL and manifest logs,
    /// whose traffic is sequential appends either way. Costs normal
    /// mechanical time and never amplifies.
    pub fn write_conventional(&mut self, ext: Extent, data: &[u8], kind: IoKind) -> DiskResult<()> {
        assert_eq!(ext.len as usize, data.len(), "extent/data length mismatch");
        self.check_range(ext)?;
        if ext.is_empty() {
            return Ok(());
        }
        self.consume_write_budget()?;
        match self.faults.on_write(ext.len) {
            WriteFault::None => {}
            WriteFault::Torn { persist } => return self.perform_torn_write(ext, data, persist),
            WriteFault::PowerLost => {
                self.stats.faults.injected_write_failures += 1;
                self.obs_event(
                    ObsLayer::Device,
                    ObsEventKind::InjectedWriteFailure,
                    ext.offset,
                    ext.len,
                );
                return Err(DiskError::Injected);
            }
        }
        let t = CONV_WRITE_OVERHEAD_NS + TimeModel::xfer_ns(ext.len, self.model.write_bps);
        self.clock_ns += t;
        self.stats.record_write(kind, ext.len, ext.len, t);
        self.obs.latency(ObsLayer::Device, "write_ns", t);
        self.store.write(ext.offset, data);
        self.valid.insert(ext);
        self.trace
            .record(self.trace_tag, self.trace_file, ext, TraceDir::Write, kind);
        self.note_write_complete();
        Ok(())
    }

    /// Marks an extent's contents as no longer valid (file delete / set
    /// fade). Free space becomes writable again under the raw layout.
    pub fn invalidate(&mut self, ext: Extent) {
        self.valid.remove(ext);
        if let Some(aud) = self.auditor.as_mut() {
            aud.record_invalidate(ext);
        }
        self.trace.record(
            self.trace_tag,
            self.trace_file,
            ext,
            TraceDir::Free,
            IoKind::Raw,
        );
    }

    /// Write pointer (relative) of the fixed band containing `offset`,
    /// if the layout has bands and the band was ever written.
    pub fn band_write_pointer(&self, offset: u64) -> Option<u64> {
        match self.layout {
            Layout::FixedBand { band_size } => {
                let band_start = offset / band_size * band_size;
                self.bands.get(&band_start).map(|b| b.wp)
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MB: u64 = 1 << 20;

    fn model(cap: u64) -> TimeModel {
        TimeModel::hdd_st1000dm003(cap)
    }

    fn data(n: u64) -> Vec<u8> {
        (0..n).map(|i| (i % 251) as u8).collect()
    }

    #[test]
    fn hdd_write_read_roundtrip() {
        let mut d = Disk::new(100 * MB, Layout::Hdd, model(100 * MB));
        let payload = data(4096);
        d.write(Extent::new(1000, 4096), &payload, IoKind::Raw)
            .unwrap();
        let back = d.read(Extent::new(1000, 4096), IoKind::Raw).unwrap();
        assert_eq!(back, payload);
        assert!(d.clock_ns() > 0);
    }

    #[test]
    fn read_unwritten_faults() {
        let mut d = Disk::new(100 * MB, Layout::Hdd, model(100 * MB));
        let err = d.read(Extent::new(0, 10), IoKind::Raw).unwrap_err();
        assert!(matches!(err, DiskError::ReadUnwritten { .. }));
    }

    #[test]
    fn read_after_invalidate_faults() {
        let mut d = Disk::new(100 * MB, Layout::Hdd, model(100 * MB));
        d.write(Extent::new(0, 100), &data(100), IoKind::Raw)
            .unwrap();
        d.invalidate(Extent::new(0, 100));
        assert!(d.read(Extent::new(0, 100), IoKind::Raw).is_err());
    }

    #[test]
    fn out_of_range_faults() {
        let mut d = Disk::new(MB, Layout::Hdd, model(MB));
        let err = d
            .write(Extent::new(MB - 10, 20), &data(20), IoKind::Raw)
            .unwrap_err();
        assert!(matches!(err, DiskError::OutOfRange { .. }));
    }

    #[test]
    fn raw_smr_rejects_overwrite_of_valid() {
        let mut d = Disk::new(
            100 * MB,
            Layout::RawHmSmr { guard_bytes: MB },
            model(100 * MB),
        );
        d.write(Extent::new(0, 1000), &data(1000), IoKind::Raw)
            .unwrap();
        let err = d
            .write(Extent::new(500, 1000), &data(1000), IoKind::Raw)
            .unwrap_err();
        assert!(matches!(err, DiskError::WouldOverlapValid { .. }));
    }

    #[test]
    fn raw_smr_guard_violation() {
        let mut d = Disk::new(
            100 * MB,
            Layout::RawHmSmr { guard_bytes: MB },
            model(100 * MB),
        );
        // Valid data at 10 MB.
        d.write(Extent::new(10 * MB, 1000), &data(1000), IoKind::Raw)
            .unwrap();
        // Writing so the damage window [end, end+1MB) reaches it must fault.
        let err = d
            .write(Extent::new(10 * MB - 4096, 1024), &data(1024), IoKind::Raw)
            .unwrap_err();
        assert!(matches!(err, DiskError::GuardViolation { .. }));
        // Writing with a full guard's clearance is fine.
        d.write(Extent::new(9 * MB - 4096, 1024), &data(1024), IoKind::Raw)
            .unwrap();
    }

    #[test]
    fn raw_smr_sequential_appends_need_no_guard() {
        // The paper: "multiple sets can be appended in a dynamic band
        // without guard regions". Appending forward never damages data.
        let mut d = Disk::new(
            100 * MB,
            Layout::RawHmSmr { guard_bytes: MB },
            model(100 * MB),
        );
        d.write(Extent::new(0, 1000), &data(1000), IoKind::Raw)
            .unwrap();
        d.write(Extent::new(1000, 1000), &data(1000), IoKind::Raw)
            .unwrap();
        d.write(Extent::new(2000, 1000), &data(1000), IoKind::Raw)
            .unwrap();
        assert_eq!(d.valid_bytes(), 3000);
        assert_eq!(d.valid_extents().len(), 1);
    }

    #[test]
    fn raw_smr_insert_after_free_with_guard() {
        let g = MB;
        let mut d = Disk::new(
            100 * MB,
            Layout::RawHmSmr { guard_bytes: g },
            model(100 * MB),
        );
        // Three regions back to back.
        d.write(Extent::new(0, 4 * MB), &data(4 * MB), IoKind::Raw)
            .unwrap();
        d.write(Extent::new(4 * MB, 4 * MB), &data(4 * MB), IoKind::Raw)
            .unwrap();
        d.write(Extent::new(8 * MB, 4 * MB), &data(4 * MB), IoKind::Raw)
            .unwrap();
        // Free the middle one; re-inserting needs req + guard <= 4MB.
        d.invalidate(Extent::new(4 * MB, 4 * MB));
        // 3 MB + 1 MB guard fits exactly.
        d.write(Extent::new(4 * MB, 3 * MB), &data(3 * MB), IoKind::Raw)
            .unwrap();
        // A byte more would damage the third region.
        assert!(d
            .write(Extent::new(7 * MB, 1), &data(1), IoKind::Raw)
            .is_err());
    }

    #[test]
    fn fixed_band_append_has_no_rmw() {
        let bs = 4 * MB;
        let mut d = Disk::new(
            100 * MB,
            Layout::FixedBand { band_size: bs },
            model(100 * MB),
        );
        d.write(Extent::new(0, MB), &data(MB), IoKind::Flush)
            .unwrap();
        d.write(Extent::new(MB, MB), &data(MB), IoKind::Flush)
            .unwrap();
        assert_eq!(d.stats().band_rmw_events, 0);
        let c = d.stats().kind(IoKind::Flush);
        assert_eq!(c.logical_written, 2 * MB);
        assert_eq!(c.device_written, 2 * MB);
    }

    #[test]
    fn fixed_band_rewrite_triggers_rmw() {
        let bs = 4 * MB;
        let mut d = Disk::new(
            100 * MB,
            Layout::FixedBand { band_size: bs },
            model(100 * MB),
        );
        // Fill 3 MB of band 0.
        d.write(Extent::new(0, 3 * MB), &data(3 * MB), IoKind::Flush)
            .unwrap();
        // Rewrite 1 MB in the middle: the device stages and rewrites the
        // whole 3 MB written prefix of the band.
        d.write(Extent::new(MB, MB), &data(MB), IoKind::CompactionWrite)
            .unwrap();
        assert_eq!(d.stats().band_rmw_events, 1);
        let c = d.stats().kind(IoKind::CompactionWrite);
        assert_eq!(c.logical_written, MB);
        assert_eq!(c.device_written, 3 * MB); // prefix rewritten
        assert_eq!(c.device_read, 3 * MB); // prefix staged first
    }

    #[test]
    fn fixed_band_continuation_after_rmw_is_sequential() {
        let bs = 8 * MB;
        let mut d = Disk::new(
            100 * MB,
            Layout::FixedBand { band_size: bs },
            model(100 * MB),
        );
        d.write(Extent::new(0, 6 * MB), &data(6 * MB), IoKind::Flush)
            .unwrap();
        // Hole-reuse write at offset 1 MB: one RMW...
        d.write(Extent::new(MB, MB), &data(MB), IoKind::CompactionWrite)
            .unwrap();
        assert_eq!(d.stats().band_rmw_events, 1);
        // ...and the continuation right after it costs no further RMW.
        d.write(Extent::new(2 * MB, MB), &data(MB), IoKind::CompactionWrite)
            .unwrap();
        assert_eq!(d.stats().band_rmw_events, 1);
    }

    #[test]
    fn fixed_band_write_spanning_bands() {
        let bs = 2 * MB;
        let mut d = Disk::new(
            100 * MB,
            Layout::FixedBand { band_size: bs },
            model(100 * MB),
        );
        let payload = data(3 * MB);
        d.write(Extent::new(MB, 3 * MB), &payload, IoKind::Flush)
            .unwrap();
        // Band 0: write at offset 1 MB on an empty band is safe (nothing
        // shingled after it is valid); band 1: continuation.
        assert_eq!(d.stats().band_rmw_events, 0);
        let back = d.read(Extent::new(MB, 3 * MB), IoKind::Raw).unwrap();
        assert_eq!(back, payload);
        assert_eq!(d.bands_touched(Extent::new(MB, 3 * MB)), 2);
    }

    #[test]
    fn bands_touched_counts() {
        let bs = 4 * MB;
        let d = Disk::new(
            100 * MB,
            Layout::FixedBand { band_size: bs },
            model(100 * MB),
        );
        assert_eq!(d.bands_touched(Extent::new(0, 1)), 1);
        assert_eq!(d.bands_touched(Extent::new(0, bs)), 1);
        assert_eq!(d.bands_touched(Extent::new(0, bs + 1)), 2);
        assert_eq!(d.bands_touched(Extent::new(bs - 1, 2)), 2);
    }

    #[test]
    fn sequential_write_is_much_faster_than_scattered() {
        let cap = 1000 * MB;
        let mk = || Disk::new(cap, Layout::Hdd, model(cap));
        // Sequential: 64 x 1 MB back to back.
        let mut seq = mk();
        for i in 0..64u64 {
            seq.write(Extent::new(i * MB, MB), &data(MB), IoKind::Raw)
                .unwrap();
        }
        // Scattered: same volume, spread over the disk.
        let mut scat = mk();
        for i in 0..64u64 {
            scat.write(
                Extent::new((i * 13 % 64) * 15 * MB, MB),
                &data(MB),
                IoKind::Raw,
            )
            .unwrap();
        }
        assert!(scat.clock_ns() > seq.clock_ns());
    }

    #[test]
    fn torn_write_persists_prefix_and_stays_down() {
        let mut d = Disk::new(100 * MB, Layout::Hdd, model(100 * MB));
        d.faults_mut().tear_write_after(1);
        d.write(Extent::new(0, 1000), &data(1000), IoKind::Raw)
            .unwrap();
        let err = d
            .write(Extent::new(1000, 1000), &vec![0xAB; 1000], IoKind::Raw)
            .unwrap_err();
        assert_eq!(
            err,
            DiskError::TornWrite {
                ext: Extent::new(1000, 1000)
            }
        );
        assert_eq!(d.stats().faults.torn_writes, 1);
        // The extent is valid (the drive acked it) but only a prefix holds
        // the new bytes; the suffix reads as zero.
        let back = d.read(Extent::new(1000, 1000), IoKind::Raw).unwrap();
        let persisted = back.iter().take_while(|&&b| b == 0xAB).count();
        assert!(persisted < 1000);
        assert!(back[persisted..].iter().all(|&b| b == 0));
        // Power stays lost until disarmed.
        assert_eq!(
            d.write(Extent::new(2000, 10), &data(10), IoKind::Raw)
                .unwrap_err(),
            DiskError::Injected
        );
        assert!(d.stats().faults.injected_write_failures >= 1);
        d.faults_mut().disarm_torn_writes();
        d.write(Extent::new(2000, 10), &data(10), IoKind::Raw)
            .unwrap();
    }

    #[test]
    fn transient_read_fails_once_then_succeeds() {
        let mut d = Disk::new(100 * MB, Layout::Hdd, model(100 * MB));
        let payload = data(4096);
        d.write(Extent::new(0, 4096), &payload, IoKind::Raw)
            .unwrap();
        d.faults_mut().fail_reads_transiently(1);
        let err = d.read(Extent::new(0, 4096), IoKind::Raw).unwrap_err();
        assert!(err.is_transient());
        assert_eq!(d.stats().faults.transient_read_errors, 1);
        assert_eq!(d.read(Extent::new(0, 4096), IoKind::Raw).unwrap(), payload);
    }

    #[test]
    fn unrecoverable_read_fails_every_attempt() {
        let mut d = Disk::new(100 * MB, Layout::Hdd, model(100 * MB));
        let payload = data(4096);
        d.write(Extent::new(0, 4096), &payload, IoKind::Raw)
            .unwrap();
        d.write(Extent::new(8192, 4096), &payload, IoKind::Raw)
            .unwrap();
        d.faults_mut().fail_reads_permanently(Extent::new(100, 8));
        for _ in 0..3 {
            let err = d.read(Extent::new(0, 4096), IoKind::Raw).unwrap_err();
            assert_eq!(
                err,
                DiskError::UnrecoverableRead {
                    ext: Extent::new(0, 4096)
                }
            );
            assert!(!err.is_transient(), "persistent faults must not retry");
        }
        assert_eq!(d.stats().faults.unrecoverable_reads, 3);
        // Reads clear of the bad sector still succeed.
        assert_eq!(
            d.read(Extent::new(8192, 4096), IoKind::Raw).unwrap(),
            payload
        );
        // Persistent dominates transient: the budget is untouched.
        d.faults_mut().fail_reads_transiently(1);
        assert!(d.read(Extent::new(0, 4096), IoKind::Raw).is_err());
        assert_eq!(d.stats().faults.transient_read_errors, 0);
    }

    #[test]
    fn failed_band_reads_fail_and_are_enumerable() {
        let mut d = Disk::new(100 * MB, Layout::Hdd, model(100 * MB));
        d.write(Extent::new(0, MB), &data(MB), IoKind::Raw).unwrap();
        d.faults_mut().fail_band(Extent::new(0, MB));
        assert!(matches!(
            d.read(Extent::new(1000, 100), IoKind::Raw),
            Err(DiskError::UnrecoverableRead { .. })
        ));
        assert_eq!(d.faults().failed_bands(), &[Extent::new(0, MB)]);
        d.faults_mut().clear_persistent_faults();
        assert!(d.read(Extent::new(1000, 100), IoKind::Raw).is_ok());
    }

    #[test]
    fn fail_slow_reads_succeed_but_multiply_latency() {
        let cap = 100 * MB;
        let payload = data(4096);
        let run = |slow: Option<(Extent, u64)>| {
            let mut d = Disk::new(cap, Layout::Hdd, model(cap));
            d.write(Extent::new(0, 4096), &payload, IoKind::Raw)
                .unwrap();
            if let Some((ext, m)) = slow {
                d.faults_mut().slow_reads(ext, m);
            }
            let t0 = d.clock_ns();
            let back = d.read(Extent::new(0, 4096), IoKind::Raw).unwrap();
            assert_eq!(back, payload);
            (d.clock_ns() - t0, d.stats().faults.fail_slow_reads)
        };
        let (fast_ns, fast_count) = run(None);
        let (slow_ns, slow_count) = run(Some((Extent::new(0, 4096), 8)));
        assert_eq!(fast_count, 0);
        assert_eq!(slow_count, 1);
        assert_eq!(slow_ns, fast_ns * 8, "multiplier must scale service time");
        // Deterministic: the same slow read costs the same again.
        let (slow_ns2, _) = run(Some((Extent::new(0, 4096), 8)));
        assert_eq!(slow_ns, slow_ns2);
    }

    #[test]
    fn read_corruption_flips_bits_in_registered_extent() {
        let mut d = Disk::new(100 * MB, Layout::Hdd, model(100 * MB));
        let payload = data(8192);
        d.write(Extent::new(0, 8192), &payload, IoKind::Raw)
            .unwrap();
        d.faults_mut().corrupt_extent(Extent::new(0, 8192));
        let back = d.read(Extent::new(0, 8192), IoKind::Raw).unwrap();
        assert_ne!(back, payload);
        assert_eq!(d.stats().faults.read_corruptions, 1);
        // Deterministic: the same read sees the same corruption.
        let again = d.read(Extent::new(0, 8192), IoKind::Raw).unwrap();
        assert_eq!(back, again);
        // Unregistered regions are untouched.
        d.write(Extent::new(MB, 100), &data(100), IoKind::Raw)
            .unwrap();
        assert_eq!(
            d.read(Extent::new(MB, 100), IoKind::Raw).unwrap(),
            data(100)
        );
    }

    #[test]
    fn snapshot_restore_power_cuts_the_disk() {
        let mut d = Disk::new(100 * MB, Layout::Hdd, model(100 * MB));
        d.write(Extent::new(0, 100), &[1u8; 100], IoKind::Raw)
            .unwrap();
        let snap = d.snapshot();
        assert_eq!(snap.write_index(), 1);
        d.write(Extent::new(0, 100), &[2u8; 100], IoKind::Raw)
            .unwrap();
        d.write(Extent::new(200, 100), &[3u8; 100], IoKind::Raw)
            .unwrap();
        let clock_before = d.clock_ns();
        d.restore(&snap);
        // Contents and validity roll back; time does not.
        assert_eq!(
            d.read(Extent::new(0, 100), IoKind::Raw).unwrap(),
            vec![1u8; 100]
        );
        assert!(d.read(Extent::new(200, 100), IoKind::Raw).is_err());
        assert!(d.clock_ns() >= clock_before);
        assert_eq!(d.writes_issued(), 1);
    }

    #[test]
    fn auto_snapshots_every_kth_write() {
        let mut d = Disk::new(100 * MB, Layout::Hdd, model(100 * MB));
        d.faults_mut().snapshot_every(2);
        for i in 0..7u64 {
            d.write(Extent::new(i * 1000, 100), &data(100), IoKind::Raw)
                .unwrap();
        }
        let snaps = d.take_crash_snapshots();
        assert_eq!(
            snaps.iter().map(|s| s.write_index()).collect::<Vec<_>>(),
            vec![2, 4, 6]
        );
        assert!(d.take_crash_snapshots().is_empty());
        // Each snapshot replays to exactly its prefix of writes.
        d.restore(&snaps[1]);
        assert!(d.read(Extent::new(3 * 1000, 100), IoKind::Raw).is_ok());
        assert!(d.read(Extent::new(4 * 1000, 100), IoKind::Raw).is_err());
    }

    #[test]
    fn fixed_band_snapshot_restores_write_pointers() {
        let bs = 4 * MB;
        let mut d = Disk::new(
            100 * MB,
            Layout::FixedBand { band_size: bs },
            model(100 * MB),
        );
        d.write(Extent::new(0, MB), &data(MB), IoKind::Flush)
            .unwrap();
        let snap = d.snapshot();
        d.write(Extent::new(MB, MB), &data(MB), IoKind::Flush)
            .unwrap();
        d.restore(&snap);
        assert_eq!(d.band_write_pointer(0), Some(MB));
        // Appending at the restored write pointer is penalty-free.
        d.write(Extent::new(MB, MB), &data(MB), IoKind::Flush)
            .unwrap();
        assert_eq!(d.stats().band_rmw_events, 0);
    }

    #[test]
    fn trace_labels_stamped() {
        let mut d = Disk::new(100 * MB, Layout::Hdd, model(100 * MB));
        d.trace_mut().set_enabled(true);
        d.set_trace_tag(7);
        d.set_trace_file(42);
        d.write(Extent::new(0, 10), &data(10), IoKind::Flush)
            .unwrap();
        let ev = d.trace().events()[0];
        assert_eq!(ev.tag, 7);
        assert_eq!(ev.file, 42);
    }
}

#[cfg(test)]
mod ha_smr_tests {
    use super::*;

    const MB: u64 = 1 << 20;

    fn ha_disk(cache: u64) -> Disk {
        let cap = 1024 * MB;
        Disk::new(
            cap,
            Layout::HaSmr {
                band_size: 4 * MB,
                media_cache_bytes: cache,
            },
            TimeModel::smr_st5000as0011(cap),
        )
    }

    fn data(n: u64) -> Vec<u8> {
        (0..n).map(|i| (i % 251) as u8).collect()
    }

    #[test]
    fn sequential_writes_bypass_the_cache() {
        let mut d = ha_disk(8 * MB);
        for i in 0..8u64 {
            d.write(Extent::new(i * MB, MB), &data(MB), IoKind::Flush)
                .unwrap();
        }
        assert_eq!(d.media_cache_used(), 0);
        assert_eq!(d.cleaning_passes(), 0);
        let c = d.stats().kind(IoKind::Flush);
        assert_eq!(c.device_written, c.logical_written);
    }

    #[test]
    fn random_writes_stage_then_clean() {
        let mut d = ha_disk(2 * MB);
        // Fill two bands so in-place rewrites are out of order.
        d.write(Extent::new(0, 4 * MB), &data(4 * MB), IoKind::Flush)
            .unwrap();
        d.write(Extent::new(4 * MB, 4 * MB), &data(4 * MB), IoKind::Flush)
            .unwrap();
        // Rewrites go to the cache, fast.
        let t0 = d.clock_ns();
        d.write(Extent::new(MB, MB), &data(MB), IoKind::CompactionWrite)
            .unwrap();
        let fast = d.clock_ns() - t0;
        assert_eq!(d.media_cache_used(), MB);
        assert_eq!(d.cleaning_passes(), 0);
        // Third staged MiB exceeds the 2 MiB cache: cleaning stalls it.
        d.write(Extent::new(5 * MB, MB), &data(MB), IoKind::CompactionWrite)
            .unwrap();
        let t1 = d.clock_ns();
        d.write(Extent::new(2 * MB, MB), &data(MB), IoKind::CompactionWrite)
            .unwrap();
        let stalled = d.clock_ns() - t1;
        assert_eq!(d.cleaning_passes(), 1);
        assert!(
            stalled > fast * 5,
            "cleaning must stall the foreground: {fast} vs {stalled}"
        );
        // Contents remain correct throughout.
        assert_eq!(
            d.read(Extent::new(MB, 4), IoKind::Raw).unwrap(),
            data(MB)[..4]
        );
    }

    #[test]
    fn cleaning_amplifies_writes() {
        let mut d = ha_disk(MB);
        d.write(Extent::new(0, 4 * MB), &data(4 * MB), IoKind::Flush)
            .unwrap();
        // Stage rewrites until several cleanings happen.
        for i in 0..8u64 {
            d.write(
                Extent::new((i % 4) * 512 * 1024, 512 * 1024),
                &data(512 * 1024),
                IoKind::CompactionWrite,
            )
            .unwrap();
        }
        assert!(d.cleaning_passes() >= 3);
        let c = d.stats().kind(IoKind::CompactionWrite);
        // Device wrote far more than the host asked: MWA not solved.
        assert!(c.device_written > 3 * c.logical_written);
    }
}
