//! Sparse backing store for disk contents.
//!
//! The simulator holds real bytes so that the KV stores built on top can be
//! checked for correctness, not just timing. A disk is logically up to tens
//! of gigabytes but only a fraction is ever written, so the contents live in
//! fixed-size chunks allocated on demand.

/// Chunk size for the sparse store. 64 KiB balances map overhead against
/// wasted space for small writes.
const CHUNK_SHIFT: u32 = 16;
const CHUNK_SIZE: usize = 1 << CHUNK_SHIFT;

/// A sparse, chunked byte array. Unwritten bytes read as zero.
///
/// Chunks are held behind `Arc` so cloning the store is a cheap
/// copy-on-write snapshot (the crash-point fault-injection harness takes
/// one at every Kth write): the clone shares every chunk until either
/// side writes, at which point only the touched chunk is copied.
#[derive(Debug, Default, Clone)]
pub struct SparseStore {
    chunks: std::collections::BTreeMap<u64, std::sync::Arc<[u8; CHUNK_SIZE]>>,
}

impl SparseStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of chunks currently materialised (for memory diagnostics).
    pub fn chunk_count(&self) -> usize {
        self.chunks.len()
    }

    /// Bytes of backing memory currently allocated.
    pub fn resident_bytes(&self) -> u64 {
        (self.chunks.len() * CHUNK_SIZE) as u64
    }

    /// Writes `data` starting at byte `offset`.
    pub fn write(&mut self, offset: u64, data: &[u8]) {
        let mut pos = offset;
        let mut rest = data;
        while !rest.is_empty() {
            let chunk_idx = pos >> CHUNK_SHIFT;
            let within = (pos & ((CHUNK_SIZE as u64) - 1)) as usize;
            let n = rest.len().min(CHUNK_SIZE - within);
            let chunk = std::sync::Arc::make_mut(
                self.chunks
                    .entry(chunk_idx)
                    .or_insert_with(|| std::sync::Arc::new([0u8; CHUNK_SIZE])),
            );
            chunk[within..within + n].copy_from_slice(&rest[..n]);
            pos += n as u64;
            rest = &rest[n..];
        }
    }

    /// Reads `buf.len()` bytes starting at `offset` into `buf`.
    pub fn read(&self, offset: u64, buf: &mut [u8]) {
        let mut pos = offset;
        let mut rest: &mut [u8] = buf;
        while !rest.is_empty() {
            let chunk_idx = pos >> CHUNK_SHIFT;
            let within = (pos & ((CHUNK_SIZE as u64) - 1)) as usize;
            let n = rest.len().min(CHUNK_SIZE - within);
            match self.chunks.get(&chunk_idx) {
                Some(chunk) => rest[..n].copy_from_slice(&chunk[within..within + n]),
                None => rest[..n].fill(0),
            }
            pos += n as u64;
            rest = &mut rest[n..];
        }
    }

    /// Reads `len` bytes starting at `offset` into a fresh vector.
    pub fn read_vec(&self, offset: u64, len: usize) -> Vec<u8> {
        let mut v = vec![0u8; len];
        self.read(offset, &mut v);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_within_chunk() {
        let mut s = SparseStore::new();
        s.write(100, b"hello world");
        assert_eq!(s.read_vec(100, 11), b"hello world");
        assert_eq!(s.chunk_count(), 1);
    }

    #[test]
    fn roundtrip_across_chunks() {
        let mut s = SparseStore::new();
        let data: Vec<u8> = (0..200_000).map(|i| (i % 251) as u8).collect();
        let offset = (CHUNK_SIZE as u64) - 37;
        s.write(offset, &data);
        assert_eq!(s.read_vec(offset, data.len()), data);
        assert!(s.chunk_count() >= 3);
    }

    #[test]
    fn unwritten_reads_zero() {
        let s = SparseStore::new();
        assert_eq!(s.read_vec(1 << 40, 8), vec![0u8; 8]);
    }

    #[test]
    fn overwrite() {
        let mut s = SparseStore::new();
        s.write(0, b"aaaaaaaa");
        s.write(2, b"bb");
        assert_eq!(s.read_vec(0, 8), b"aabbaaaa");
    }

    #[test]
    fn clone_is_copy_on_write() {
        let mut s = SparseStore::new();
        s.write(0, b"original");
        let snap = s.clone();
        // Writing to the live store must not bleed into the snapshot.
        s.write(0, b"replaced");
        assert_eq!(s.read_vec(0, 8), b"replaced");
        assert_eq!(snap.read_vec(0, 8), b"original");
        // Untouched chunks stay shared; only the written one was copied.
        s.write(1 << 30, b"far");
        assert_eq!(snap.read_vec(1 << 30, 3), vec![0u8; 3]);
    }

    #[test]
    fn sparse_far_apart_writes() {
        let mut s = SparseStore::new();
        s.write(0, b"x");
        s.write(1 << 34, b"y");
        assert_eq!(s.chunk_count(), 2);
        assert_eq!(s.read_vec(1 << 34, 1), b"y");
    }
}
