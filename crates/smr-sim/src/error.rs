//! Error type for disk operations.

use crate::extent::Extent;
use std::fmt;

/// Errors raised by the simulated disk.
///
/// A correct SMR-aware client (such as SEALDB's dynamic band manager) must
/// never trigger `WouldOverlapValid` / `GuardViolation`; the simulator treats
/// them as faults rather than silently corrupting data, so that tests can
/// assert the host honours the Caveat-Scriptor contract.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DiskError {
    /// Access extends past the end of the disk.
    OutOfRange { ext: Extent, capacity: u64 },
    /// A raw-SMR write would overwrite bytes currently holding valid data.
    WouldOverlapValid { ext: Extent, valid: Extent },
    /// A raw-SMR write's shingle-direction damage window would destroy
    /// valid data (the host failed to reserve a guard region).
    GuardViolation { ext: Extent, damaged: Extent },
    /// A read touched bytes that were never written (or were invalidated).
    ReadUnwritten { ext: Extent },
    /// Injected failure (fault-injection testing).
    Injected,
    /// An injected torn write: the drive acknowledged `ext` but persisted
    /// only a prefix of it before dying, so the extent reads back with a
    /// stale suffix that host-side checksums must catch.
    TornWrite { ext: Extent },
    /// An injected *transient* read error (latent sector error that a
    /// retry recovers): re-issuing the same read succeeds.
    TransientRead { ext: Extent },
    /// An injected *persistent* read error: the extent overlaps a latent
    /// sector error (or failed band) registered in the fault plan, so
    /// every read of it fails — no retry budget helps. Recovery requires
    /// relocating or re-materialising the data elsewhere.
    UnrecoverableRead { ext: Extent },
}

impl DiskError {
    /// True for errors a caller should retry once before giving up.
    pub fn is_transient(&self) -> bool {
        matches!(self, DiskError::TransientRead { .. })
    }
}

impl fmt::Display for DiskError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DiskError::OutOfRange { ext, capacity } => {
                write!(f, "access {ext:?} out of range (capacity {capacity})")
            }
            DiskError::WouldOverlapValid { ext, valid } => {
                write!(f, "write {ext:?} would overwrite valid data at {valid:?}")
            }
            DiskError::GuardViolation { ext, damaged } => write!(
                f,
                "write {ext:?} damages valid data at {damaged:?} in the shingle direction"
            ),
            DiskError::ReadUnwritten { ext } => {
                write!(f, "read {ext:?} touches unwritten bytes")
            }
            DiskError::Injected => write!(f, "injected write failure"),
            DiskError::TornWrite { ext } => {
                write!(f, "torn write at {ext:?} (prefix persisted, power lost)")
            }
            DiskError::TransientRead { ext } => {
                write!(f, "transient read error at {ext:?} (retry should succeed)")
            }
            DiskError::UnrecoverableRead { ext } => {
                write!(
                    f,
                    "unrecoverable read error at {ext:?} (persistent media fault)"
                )
            }
        }
    }
}

impl std::error::Error for DiskError {}

/// Convenient result alias for disk operations.
pub type DiskResult<T> = Result<T, DiskError>;
