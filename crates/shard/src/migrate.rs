//! Band-granular shard migration: split the hottest shard, merge a
//! retiring one.
//!
//! Both directions move data in **band-sized write batches**
//! ([`crate::ShardConfig::band_size`], 10 × SSTable at the paper's
//! ratio): the destination absorbs one band's worth of keys per
//! `Store::write`, then the source deletes the same keys in one batch —
//! so a migration is a bounded number of large sequential commits, not
//! a per-key chatter, and every moved key is either still on the source
//! or already acked on the destination at all times (copy-then-delete).
//!
//! A split picks its victim off the per-shard observability gauges
//! ([`crate::ShardCluster::hottest_shard`]) and edits only that shard's
//! ring arcs, so the blast radius is one shard's keyspace; a merge
//! removes the victim's arcs and re-routes its residents to whatever
//! shard now owns them. Both return a [`MigrationReport`] and both
//! leave the cluster auditable: the acked-key loss audit is the gate
//! the determinism tests and BENCH_pr7 checker enforce.

use crate::{Shard, ShardCluster};
use lsm_core::{Error, Result, WriteBatch};

/// Resident records of one shard, as `(key, value)` pairs.
type Records = Vec<(Vec<u8>, Vec<u8>)>;

/// Which direction a migration moved data.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MigrationKind {
    /// A shard's keyspace was split onto a newly built shard.
    Split {
        /// The shard that gave up about half its arcs.
        from: usize,
        /// The newly created shard.
        to: usize,
    },
    /// A shard was retired and its residents re-routed to survivors.
    Merge {
        /// The shard removed from the ring.
        removed: usize,
    },
}

/// What one migration did, for the artifact and the audit trail.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MigrationReport {
    /// Split or merge, and between whom.
    pub kind: MigrationKind,
    /// Keys that changed shard.
    pub moved_keys: u64,
    /// Key+value payload bytes those keys carried.
    pub moved_bytes: u64,
    /// Band-sized write batches the move took.
    pub batches: u64,
    /// Simulated time the migration occupied, ns (participants only).
    pub duration_ns: u64,
}

impl ShardCluster {
    /// Scans every resident key of shard `idx`, paged.
    fn resident_keys(&mut self, idx: usize) -> Result<Records> {
        let mut all = Vec::new();
        let mut start: Vec<u8> = Vec::new();
        loop {
            let page = self.store_mut(idx).scan(&start, 1024)?;
            let full = page.len() == 1024;
            let last = page.last().map(|(k, _)| k.clone());
            all.extend(page);
            match last {
                Some(k) if full => {
                    start = k;
                    start.push(0);
                }
                _ => break,
            }
        }
        Ok(all)
    }

    /// Moves `records` from shard `src` to shard `dst` in band-sized
    /// batches: write one band to `dst`, then delete the same keys from
    /// `src` in one batch. Returns (keys, payload bytes, batches).
    fn move_in_bands(
        &mut self,
        src: usize,
        dst: usize,
        records: &[(Vec<u8>, Vec<u8>)],
    ) -> Result<(u64, u64, u64)> {
        let band = self.config().band_size() as usize;
        let mut moved_keys = 0u64;
        let mut moved_bytes = 0u64;
        let mut batches = 0u64;
        let mut put = WriteBatch::new();
        let mut del = WriteBatch::new();
        let mut flush =
            |this: &mut ShardCluster, put: &mut WriteBatch, del: &mut WriteBatch| -> Result<()> {
                if put.count() == 0 {
                    return Ok(());
                }
                batches += 1;
                this.store_mut(dst).write(std::mem::take(put))?;
                this.store_mut(src).write(std::mem::take(del))?;
                Ok(())
            };
        for (k, v) in records {
            if put.byte_size() + k.len() + v.len() > band && put.count() > 0 {
                flush(self, &mut put, &mut del)?;
            }
            put.put(k, v);
            del.delete(k);
            moved_keys += 1;
            moved_bytes += (k.len() + v.len()) as u64;
        }
        flush(self, &mut put, &mut del)?;
        Ok((moved_keys, moved_bytes, batches))
    }

    /// Splits the hottest shard (per the obs gauges) onto a newly built
    /// shard: builds the new store, hands it alternate ring arcs of the
    /// victim, then moves exactly the keys whose ownership changed, one
    /// band per batch. Deterministic end to end — victim choice, arc
    /// reassignment, and move order all replay identically.
    pub fn split_hottest(&mut self) -> Result<MigrationReport> {
        let from = self.hottest_shard();
        let to = self.total_shards();
        let t0 = self.sync_all();
        let store = crate::build_shard_store(self.config(), to)?;
        self.shards.push(Shard {
            store,
            active: true,
        });
        self.sync_shard_clock(to, t0);
        let moved_points = self.ring.split(from, to);
        debug_assert!(moved_points > 0, "split moved no ring points");
        // Only keys resident on `from` can have changed owner.
        let residents = self.resident_keys(from)?;
        let moving: Vec<(Vec<u8>, Vec<u8>)> = residents
            .into_iter()
            .filter(|(k, _)| self.route(k) == to)
            .collect();
        let (moved_keys, moved_bytes, batches) = self.move_in_bands(from, to, &moving)?;
        let end = self.store(from).clock_ns().max(self.store(to).clock_ns());
        self.sync_shard_clock(from, end);
        self.sync_shard_clock(to, end);
        self.now_ns = self.now_ns.max(end);
        Ok(MigrationReport {
            kind: MigrationKind::Split { from, to },
            moved_keys,
            moved_bytes,
            batches,
            duration_ns: end - t0,
        })
    }

    /// Retires shard `victim`: removes its ring arcs, re-routes every
    /// resident key to its new owner in band-sized batches, and marks
    /// the slot inactive. The emptied store stays in place so shard
    /// indices remain stable.
    pub fn merge_shard(&mut self, victim: usize) -> Result<MigrationReport> {
        self.check_active(victim)?;
        if self.active_shards().len() < 2 {
            return Err(Error::InvalidArgument(
                "cannot merge away the last active shard".to_string(),
            ));
        }
        let t0 = self.sync_all();
        self.ring.remove_shard(victim);
        let residents = self.resident_keys(victim)?;
        // Group the evacuation by destination so each new owner absorbs
        // its share in band-sized batches (owners iterate ascending).
        let mut by_owner: std::collections::BTreeMap<usize, Records> =
            std::collections::BTreeMap::new();
        for (k, v) in residents {
            let owner = self.route(&k);
            by_owner.entry(owner).or_default().push((k, v));
        }
        let mut moved_keys = 0u64;
        let mut moved_bytes = 0u64;
        let mut batches = 0u64;
        for (owner, records) in &by_owner {
            let (mk, mb, nb) = self.move_in_bands(victim, *owner, records)?;
            moved_keys += mk;
            moved_bytes += mb;
            batches += nb;
        }
        self.shards[victim].active = false;
        let mut end = self.store(victim).clock_ns();
        for owner in by_owner.keys() {
            end = end.max(self.store(*owner).clock_ns());
        }
        for owner in by_owner.keys() {
            self.sync_shard_clock(*owner, end);
        }
        self.now_ns = self.now_ns.max(end);
        Ok(MigrationReport {
            kind: MigrationKind::Merge { removed: victim },
            moved_keys,
            moved_bytes,
            batches,
            duration_ns: end - t0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{imbalance, ShardCluster, ShardConfig};
    use workloads::RecordGenerator;

    const SST: u64 = 32 << 10;
    const CAP: u64 = 1 << 30;

    fn loaded(shards: usize, n: u64, gen: &RecordGenerator) -> ShardCluster {
        let mut c = ShardCluster::new(ShardConfig::new(shards, SST, CAP)).unwrap();
        c.load(gen, n).unwrap();
        c
    }

    #[test]
    fn split_moves_about_half_the_victim_and_loses_nothing() {
        let gen = RecordGenerator::new(16, 64, 5);
        let mut c = loaded(2, 2000, &gen);
        let before = c.shard_key_counts().unwrap();
        let r = c.split_hottest().unwrap();
        let MigrationKind::Split { from, to } = r.kind else {
            panic!("expected a split")
        };
        assert_eq!(to, 2);
        assert!(r.moved_keys > 0);
        assert!(r.batches > 0);
        assert!(r.duration_ns > 0, "moving bands must cost simulated time");
        let after = c.shard_key_counts().unwrap();
        // The victim gave up roughly half (alternate arcs), nobody else
        // changed, and the new shard holds exactly what moved.
        assert_eq!(after[to], r.moved_keys);
        assert_eq!(after[from] + r.moved_keys, before[from]);
        let third = before[from] / 3;
        assert!(
            r.moved_keys > third,
            "split moved {} of {} keys — less than a third",
            r.moved_keys,
            before[from]
        );
        assert_eq!(c.audit(&gen, 2000).unwrap().lost, 0);
    }

    #[test]
    fn split_improves_or_holds_placement_imbalance_at_scale() {
        let gen = RecordGenerator::new(16, 64, 5);
        let mut c = loaded(4, 4000, &gen);
        c.split_hottest().unwrap();
        let counts = c.shard_key_counts().unwrap();
        assert_eq!(counts.iter().sum::<u64>(), 4000);
        assert_eq!(counts.len(), 5);
        assert!(counts.iter().all(|&n| n > 0), "{counts:?}");
        assert!(imbalance(&counts) < 2.0, "post-split {counts:?}");
    }

    #[test]
    fn merge_redistributes_everything_and_deactivates() {
        let gen = RecordGenerator::new(16, 64, 5);
        let mut c = loaded(3, 1500, &gen);
        let before = c.shard_key_counts().unwrap();
        let r = c.merge_shard(1).unwrap();
        assert_eq!(r.kind, MigrationKind::Merge { removed: 1 });
        assert_eq!(r.moved_keys, before[1]);
        assert!(!c.is_active(1));
        assert_eq!(c.active_shards(), vec![0, 2]);
        let after = c.shard_key_counts().unwrap();
        assert_eq!(after[1], 0);
        assert_eq!(after.iter().sum::<u64>(), 1500);
        assert_eq!(c.audit(&gen, 1500).unwrap().lost, 0);
        // Routing a key to the dead shard is impossible; ops still work.
        for i in 0..1500u64 {
            assert_ne!(c.route(&gen.key(i)), 1);
        }
    }

    #[test]
    fn merged_away_shard_rejects_direct_traffic() {
        let gen = RecordGenerator::new(16, 64, 5);
        let mut c = loaded(2, 400, &gen);
        c.merge_shard(0).unwrap();
        let err = c.merge_shard(0).unwrap_err();
        assert!(err.to_string().contains("merged away"), "{err}");
        // The survivor cannot be merged away.
        assert!(c.merge_shard(1).is_err());
    }

    #[test]
    fn migration_is_deterministic() {
        let gen = RecordGenerator::new(16, 64, 5);
        let run = || {
            let mut c = loaded(3, 1200, &gen);
            let split = c.split_hottest().unwrap();
            let merge = c.merge_shard(0).unwrap();
            (split, merge, c.state_hashes().unwrap(), c.now_ns())
        };
        assert_eq!(run(), run());
    }
}
