//! Consistent-hash ring with virtual nodes.
//!
//! Each shard owns `vnodes` points on a 64-bit ring; a key routes to
//! the owner of the first point at or clockwise past its hash. Virtual
//! nodes bound placement imbalance (relative spread of a shard's arc
//! share shrinks like `1/sqrt(vnodes)`), and splitting a shard is a
//! pure ownership edit: reassigning alternate points moves about half
//! of that shard's arcs — and no one else's — to the new owner.
//!
//! The ring is a `BTreeMap`, so routing and every enumeration below is
//! deterministic; point positions are a pure function of (shard,
//! replica) indices.

use std::collections::BTreeMap;

/// FNV-1a 64-bit over a byte slice — the key hash of the router.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// SplitMix64 finalizer: spreads sequential (shard, replica) indices
/// uniformly over the 64-bit ring.
fn mix64(mut x: u64) -> u64 {
    x ^= x >> 33;
    x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    x ^= x >> 33;
    x = x.wrapping_mul(0xC4CE_B9FE_1A85_EC53);
    x ^ (x >> 33)
}

/// A consistent-hash ring mapping 64-bit points to shard indices.
#[derive(Clone, Debug)]
pub struct HashRing {
    points: BTreeMap<u64, usize>,
    vnodes: usize,
}

impl HashRing {
    /// An empty ring placing `vnodes` points per shard (min 1).
    pub fn new(vnodes: usize) -> Self {
        HashRing {
            points: BTreeMap::new(),
            vnodes: vnodes.max(1),
        }
    }

    /// Points per full shard.
    pub fn vnodes(&self) -> usize {
        self.vnodes
    }

    /// Total points currently on the ring.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the ring has no points (routing is impossible).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Inserts `shard`'s virtual-node points. Point positions depend
    /// only on (shard, replica), so rebuilding a ring with the same
    /// membership yields the same layout; the rare position collision
    /// probes deterministically.
    pub fn add_shard(&mut self, shard: usize) {
        for replica in 0..self.vnodes {
            let mut p = mix64(
                (shard as u64)
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(replica as u64),
            );
            while self.points.contains_key(&p) {
                p = mix64(p.wrapping_add(0x9E37_79B9_7F4A_7C15));
            }
            self.points.insert(p, shard);
        }
    }

    /// Removes every point `shard` owns; its arcs fall to the next
    /// clockwise owners.
    pub fn remove_shard(&mut self, shard: usize) {
        self.points.retain(|_, &mut s| s != shard);
    }

    /// Splits `from` by handing every other of its points (odd
    /// positions in point order) to `to`: about half of `from`'s arcs
    /// — and only `from`'s — change owner. Returns the points moved.
    pub fn split(&mut self, from: usize, to: usize) -> usize {
        let mine: Vec<u64> = self
            .points
            .iter()
            .filter(|&(_, &s)| s == from)
            .map(|(&p, _)| p)
            .collect();
        let mut moved = 0;
        for p in mine.iter().skip(1).step_by(2) {
            self.points.insert(*p, to);
            moved += 1;
        }
        moved
    }

    /// Routes a precomputed 64-bit hash to its owning shard.
    ///
    /// # Panics
    ///
    /// Panics if the ring is empty.
    pub fn route_hash(&self, h: u64) -> usize {
        match self.points.range(h..).next() {
            Some((_, &s)) => s,
            None => {
                let (_, &s) = self.points.iter().next().expect("routing on an empty ring");
                s
            }
        }
    }

    /// Routes a key to its owning shard (FNV-1a hash, then
    /// [`HashRing::route_hash`]).
    pub fn route(&self, key: &[u8]) -> usize {
        self.route_hash(fnv1a64(key))
    }

    /// Distinct shard indices with at least one point, ascending.
    pub fn owners(&self) -> Vec<usize> {
        let mut v: Vec<usize> = self.points.values().copied().collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Number of points `shard` currently owns.
    pub fn points_of(&self, shard: usize) -> usize {
        self.points.values().filter(|&&s| s == shard).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routing_is_total_and_stable() {
        let mut r = HashRing::new(64);
        for s in 0..4 {
            r.add_shard(s);
        }
        assert_eq!(r.len(), 4 * 64);
        for i in 0..1000u64 {
            let key = format!("key{i:08}");
            let a = r.route(key.as_bytes());
            let b = r.route(key.as_bytes());
            assert_eq!(a, b);
            assert!(a < 4);
        }
    }

    #[test]
    fn every_shard_owns_keys() {
        let mut r = HashRing::new(128);
        for s in 0..8 {
            r.add_shard(s);
        }
        let mut counts = [0u64; 8];
        for i in 0..20_000u64 {
            counts[r.route(format!("user{i:010}").as_bytes())] += 1;
        }
        for (s, &c) in counts.iter().enumerate() {
            assert!(c > 0, "shard {s} owns no keys");
        }
        let mean = 20_000.0 / 8.0;
        let max = *counts.iter().max().unwrap() as f64;
        assert!(
            max / mean < 1.25,
            "placement imbalance {:.3} with 128 vnodes",
            max / mean
        );
    }

    #[test]
    fn split_moves_only_the_source_shards_keys() {
        let mut r = HashRing::new(64);
        for s in 0..3 {
            r.add_shard(s);
        }
        let before: Vec<usize> = (0..5000u64)
            .map(|i| r.route(format!("k{i:07}").as_bytes()))
            .collect();
        let moved_points = r.split(1, 3);
        assert!(moved_points > 0);
        assert_eq!(r.points_of(1) + moved_points, 64);
        let mut moved = 0u64;
        for (i, &owner_before) in before.iter().enumerate() {
            let now = r.route(format!("k{i:07}").as_bytes());
            if now != owner_before {
                assert_eq!(owner_before, 1, "split moved a key shard 1 never owned");
                assert_eq!(
                    now, 3,
                    "split moved a key somewhere other than the new shard"
                );
                moved += 1;
            }
        }
        assert!(moved > 0, "split moved no keys");
    }

    #[test]
    fn remove_redistributes_to_survivors() {
        let mut r = HashRing::new(64);
        for s in 0..4 {
            r.add_shard(s);
        }
        r.remove_shard(2);
        assert_eq!(r.points_of(2), 0);
        assert_eq!(r.owners(), vec![0, 1, 3]);
        for i in 0..2000u64 {
            assert_ne!(r.route(format!("k{i:07}").as_bytes()), 2);
        }
    }

    #[test]
    #[should_panic(expected = "empty ring")]
    fn empty_ring_routing_panics() {
        HashRing::new(8).route(b"k");
    }
}
