//! # seal-shard — deterministic multi-shard scale-out
//!
//! One SMR drive bounds one store's saturation throughput; a serving
//! deployment scales out by running N independent [`Store`] shards —
//! each with its own simulated disk, WAL, allocator, and compaction
//! budget — behind a cluster router. This crate models that as a
//! discrete-event simulation on the shards' *simulated* clocks, so a
//! (config, seed) pair replays byte-identically:
//!
//! * **Routing** — a consistent-hash [`HashRing`] with virtual nodes
//!   maps keys to shards; placement imbalance is bounded by the vnode
//!   count, not luck.
//! * **Serving** — [`serve`] drives a multi-client workload through
//!   per-shard request queues with LevelDB-style group commit per
//!   shard (sharing `seal-front`'s cap semantics via
//!   [`seal_front::group_fits`]), choosing the next event by
//!   `(time, admission index, shard)` so ties break deterministically.
//! * **Migration** — band-granular split of the hottest shard (chosen
//!   from the per-shard observability gauges) and merge of a retiring
//!   shard, moving keys in band-sized batches with a full audit trail.
//!
//! Every shard is an ordinary [`Store`] built from a [`StoreConfig`]
//! with an instance label (`shard-0`, `shard-1`, ...), so per-shard
//! metrics registries stay distinguishable when aggregated.

mod migrate;
mod ring;
mod serve;

pub use migrate::{MigrationKind, MigrationReport};
pub use ring::{fnv1a64, HashRing};
pub use serve::{serve, ClusterServeConfig, ClusterServeResult};

use lsm_core::{Error, Result};
use sealdb::{Store, StoreConfig, StoreKind};
use smr_sim::ObsLayer;
use workloads::RecordGenerator;

/// Configuration of one shard cluster.
#[derive(Clone, Debug)]
pub struct ShardConfig {
    /// Which store kind every shard runs.
    pub kind: StoreKind,
    /// Initial number of shards.
    pub shards: usize,
    /// SSTable size of every shard store.
    pub sstable_size: u64,
    /// Disk capacity of every shard store.
    pub disk_capacity: u64,
    /// Determinism seed; each shard derives its own store seed from it.
    pub seed: u64,
    /// Virtual nodes per shard on the routing ring.
    pub vnodes: usize,
}

impl ShardConfig {
    /// A SEALDB cluster of `shards` shards with 256 vnodes each.
    pub fn new(shards: usize, sstable_size: u64, disk_capacity: u64) -> Self {
        ShardConfig {
            kind: StoreKind::SealDb,
            shards,
            sstable_size,
            disk_capacity,
            seed: 0x5EA1_5AD5,
            vnodes: 256,
        }
    }

    /// Same configuration with a different seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Band size at the paper's ratio (10 × SSTable) — the unit
    /// migration moves data in.
    pub fn band_size(&self) -> u64 {
        self.sstable_size * 10
    }
}

/// One cluster member: a store plus its routing liveness. A merged-away
/// shard keeps its (emptied) store so indices stay stable, but owns no
/// ring points and receives no traffic.
#[derive(Debug)]
struct Shard {
    store: Store,
    active: bool,
}

/// Result of re-reading every key the cluster has acknowledged.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AuditReport {
    /// Keys checked against their routed shard.
    pub checked: u64,
    /// Keys whose routed shard no longer serves the promised value.
    pub lost: u64,
}

/// Cluster-wide rollup of every shard's recovery and scrub counters —
/// one snapshot of how much self-healing the deployment has done, in
/// the same gauge style [`Store::metrics_snapshot`] exports per store.
/// Built by [`ShardCluster::recovery_summary`]; the chaos oracle
/// asserts on its scrub accounting balance after composed-fault runs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoverySummary {
    /// Shard slots summed (merged-away slots included — their stores
    /// still exist and may have recovered or scrubbed).
    pub shards: u64,
    /// WAL records replayed across all shards' most recent recoveries.
    pub wal_records_recovered: u64,
    /// WAL records skipped as torn or CRC-failed.
    pub wal_records_skipped: u64,
    /// WAL bytes dropped while resynchronising.
    pub wal_bytes_dropped: u64,
    /// Manifest records dropped after the first corrupt one.
    pub manifest_records_dropped: u64,
    /// Orphan data files reclaimed at recovery.
    pub orphan_files_dropped: u64,
    /// Files quarantined by reopen validation.
    pub recovery_files_quarantined: u64,
    /// Table bytes scrub has read and verified, lifetime.
    pub scrub_bytes_verified: u64,
    /// Blocks that failed their first checksum pass.
    pub scrub_blocks_corrupt: u64,
    /// Corrupt blocks recovered by single-bit correction.
    pub scrub_blocks_corrected: u64,
    /// Blocks lost outright.
    pub scrub_blocks_lost: u64,
    /// Files rebuilt onto healthy space.
    pub scrub_files_repaired: u64,
    /// Files dropped from a version as unrecoverable.
    pub scrub_files_quarantined: u64,
    /// Damaged extents fenced off the allocation path.
    pub scrub_extents_fenced: u64,
    /// Completed full scrub passes.
    pub scrub_full_passes: u64,
}

impl RecoverySummary {
    /// The rollup as stable `(gauge name, value)` pairs, declaration
    /// order — the export shape dashboards and artifacts consume.
    pub fn gauges(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("cluster_shards", self.shards),
            ("cluster_wal_records_recovered", self.wal_records_recovered),
            ("cluster_wal_records_skipped", self.wal_records_skipped),
            ("cluster_wal_bytes_dropped", self.wal_bytes_dropped),
            (
                "cluster_manifest_records_dropped",
                self.manifest_records_dropped,
            ),
            ("cluster_orphan_files_dropped", self.orphan_files_dropped),
            (
                "cluster_recovery_files_quarantined",
                self.recovery_files_quarantined,
            ),
            ("cluster_scrub_bytes_verified", self.scrub_bytes_verified),
            ("cluster_scrub_blocks_corrupt", self.scrub_blocks_corrupt),
            (
                "cluster_scrub_blocks_corrected",
                self.scrub_blocks_corrected,
            ),
            ("cluster_scrub_blocks_lost", self.scrub_blocks_lost),
            ("cluster_scrub_files_repaired", self.scrub_files_repaired),
            (
                "cluster_scrub_files_quarantined",
                self.scrub_files_quarantined,
            ),
            ("cluster_scrub_extents_fenced", self.scrub_extents_fenced),
            ("cluster_scrub_full_passes", self.scrub_full_passes),
        ]
    }

    /// Whether every corrupt block scrub found was accounted for: either
    /// corrected in place or declared lost (and its file repaired or
    /// quarantined). An imbalance means a block vanished from the books
    /// — one of the chaos oracle's invariants.
    pub fn scrub_accounting_balanced(&self) -> bool {
        self.scrub_blocks_corrupt == self.scrub_blocks_corrected + self.scrub_blocks_lost
    }
}

/// Max-over-mean of a count vector — the load-imbalance figure the
/// BENCH_pr7 artifact gates on. Empty or all-zero input reads 1.0.
pub fn imbalance(counts: &[u64]) -> f64 {
    if counts.is_empty() {
        return 1.0;
    }
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return 1.0;
    }
    let mean = total as f64 / counts.len() as f64;
    let max = *counts.iter().max().expect("non-empty") as f64;
    max / mean
}

/// N independent store shards behind a consistent-hash router, on one
/// deterministic simulated timeline.
#[derive(Debug)]
pub struct ShardCluster {
    cfg: ShardConfig,
    shards: Vec<Shard>,
    ring: HashRing,
    /// Cluster-logical time: the latest completion frontier. Shard disk
    /// clocks are synced forward to this before cluster-wide phases.
    now_ns: u64,
}

impl ShardCluster {
    /// Builds a cluster of `cfg.shards` fresh shard stores.
    pub fn new(cfg: ShardConfig) -> Result<ShardCluster> {
        assert!(cfg.shards >= 1, "a cluster needs at least one shard");
        let mut ring = HashRing::new(cfg.vnodes);
        let mut shards = Vec::with_capacity(cfg.shards);
        for idx in 0..cfg.shards {
            let store = build_shard_store(&cfg, idx)?;
            ring.add_shard(idx);
            shards.push(Shard {
                store,
                active: true,
            });
        }
        Ok(ShardCluster {
            cfg,
            shards,
            ring,
            now_ns: 0,
        })
    }

    /// The cluster configuration.
    pub fn config(&self) -> &ShardConfig {
        &self.cfg
    }

    /// The routing ring.
    pub fn ring(&self) -> &HashRing {
        &self.ring
    }

    /// Shards currently taking traffic, ascending index order.
    pub fn active_shards(&self) -> Vec<usize> {
        (0..self.shards.len())
            .filter(|&i| self.shards[i].active)
            .collect()
    }

    /// Total shard slots ever created (including merged-away ones).
    pub fn total_shards(&self) -> usize {
        self.shards.len()
    }

    /// Whether shard `idx` is taking traffic.
    pub fn is_active(&self, idx: usize) -> bool {
        self.shards[idx].active
    }

    /// Cluster-logical simulated time, ns.
    pub fn now_ns(&self) -> u64 {
        self.now_ns
    }

    /// The shard a key routes to.
    pub fn route(&self, key: &[u8]) -> usize {
        self.ring.route(key)
    }

    /// Direct access to shard `idx`'s store (tests and the serve loop).
    pub fn store_mut(&mut self, idx: usize) -> &mut Store {
        &mut self.shards[idx].store
    }

    /// Read access to shard `idx`'s store.
    pub fn store(&self, idx: usize) -> &Store {
        &self.shards[idx].store
    }

    pub(crate) fn check_active(&self, idx: usize) -> Result<()> {
        if !self.shards[idx].active {
            return Err(Error::InvalidArgument(format!(
                "shard {idx} was merged away and takes no traffic"
            )));
        }
        Ok(())
    }

    /// Advances shard `idx`'s disk clock to at least `t_ns`.
    pub(crate) fn sync_shard_clock(&mut self, idx: usize, t_ns: u64) {
        let store = &mut self.shards[idx].store;
        let c = store.clock_ns();
        if t_ns > c {
            store.db.ctx().lock().fs.disk_mut().advance_ns(t_ns - c);
        }
    }

    /// Syncs every active shard forward to the cluster frontier and
    /// returns that start time — the prologue of cluster-wide phases.
    pub(crate) fn sync_all(&mut self) -> u64 {
        let mut start = self.now_ns;
        for idx in self.active_shards() {
            start = start.max(self.shards[idx].store.clock_ns());
        }
        for idx in self.active_shards() {
            self.sync_shard_clock(idx, start);
        }
        self.now_ns = start;
        start
    }

    // ----- routed single operations -----

    /// Inserts one key/value pair on its routed shard. Single-shard
    /// operations run on that shard's own clock (shards load and serve
    /// in parallel); only cluster-wide phases synchronise timelines.
    pub fn put(&mut self, key: &[u8], value: &[u8]) -> Result<()> {
        let idx = self.route(key);
        self.check_active(idx)?;
        self.shards[idx].store.put(key, value)
    }

    /// Point-reads a key from its routed shard.
    pub fn get(&mut self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        let idx = self.route(key);
        self.check_active(idx)?;
        self.shards[idx].store.get(key)
    }

    /// Deletes a key on its routed shard.
    pub fn delete(&mut self, key: &[u8]) -> Result<()> {
        let idx = self.route(key);
        self.check_active(idx)?;
        self.shards[idx].store.delete(key)
    }

    /// Scatter-gather range scan: every active shard scans locally from
    /// `start`, and the cluster merges the fronts to the globally first
    /// `limit` keys.
    pub fn scan(&mut self, start: &[u8], limit: usize) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        let mut merged: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
        for idx in self.active_shards() {
            merged.extend(self.shards[idx].store.scan(start, limit)?);
        }
        merged.sort();
        merged.truncate(limit);
        Ok(merged)
    }

    // ----- bulk load -----

    /// Random-order loads records `0..n` of `gen` through the router
    /// and flushes every shard. Returns the per-shard key placement.
    pub fn load(&mut self, gen: &RecordGenerator, n: u64) -> Result<Vec<u64>> {
        let mut placed = vec![0u64; self.shards.len()];
        for i in 0..n {
            let j = workloads::permute(i, n.max(1), self.cfg.seed);
            let key = gen.key(j);
            let idx = self.route(&key);
            self.check_active(idx)?;
            self.shards[idx].store.put(&key, &gen.value(j))?;
            placed[idx] += 1;
        }
        for idx in self.active_shards() {
            self.shards[idx].store.flush()?;
        }
        Ok(placed)
    }

    // ----- state inspection -----

    /// Keys currently resident on each shard slot (paged scans;
    /// merged-away shards report 0).
    pub fn shard_key_counts(&mut self) -> Result<Vec<u64>> {
        let mut counts = vec![0u64; self.shards.len()];
        for idx in self.active_shards() {
            let mut start: Vec<u8> = Vec::new();
            loop {
                let page = self.shards[idx].store.scan(&start, 1024)?;
                counts[idx] += page.len() as u64;
                match page.last() {
                    Some((k, _)) if page.len() == 1024 => {
                        start = k.clone();
                        start.push(0);
                    }
                    _ => break,
                }
            }
        }
        Ok(counts)
    }

    /// FNV-1a digest of shard `idx`'s full key/value state — the
    /// per-shard fingerprint the determinism tests compare.
    pub fn state_hash(&mut self, idx: usize) -> Result<u64> {
        let store = &mut self.shards[idx].store;
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let fold = |h: &mut u64, bytes: &[u8]| {
            *h = (*h ^ bytes.len() as u64).wrapping_mul(0x100_0000_01b3);
            for &b in bytes {
                *h = (*h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
            }
        };
        let mut start: Vec<u8> = Vec::new();
        loop {
            let page = store.scan(&start, 1024)?;
            for (k, v) in &page {
                fold(&mut h, k);
                fold(&mut h, v);
            }
            match page.last() {
                Some((k, _)) if page.len() == 1024 => {
                    start = k.clone();
                    start.push(0);
                }
                _ => break,
            }
        }
        Ok(h)
    }

    /// State hashes of every active shard, ascending index order.
    pub fn state_hashes(&mut self) -> Result<Vec<u64>> {
        self.active_shards()
            .into_iter()
            .map(|idx| self.state_hash(idx))
            .collect()
    }

    /// Re-reads records `0..n` of `gen` through the router and counts
    /// keys whose routed shard no longer returns the generator value —
    /// the acked-key loss audit migration gates on.
    pub fn audit(&mut self, gen: &RecordGenerator, n: u64) -> Result<AuditReport> {
        let mut lost = 0u64;
        for i in 0..n {
            let key = gen.key(i);
            if self.get(&key)? != Some(gen.value(i)) {
                lost += 1;
            }
        }
        Ok(AuditReport { checked: n, lost })
    }

    /// Rolls every shard's [`lsm_core::DbCore::recovery_report`] and
    /// scrub lifetime totals into one [`RecoverySummary`]. All shard
    /// slots are summed, merged-away ones included, so the rollup never
    /// loses healing history when the topology changes.
    pub fn recovery_summary(&self) -> RecoverySummary {
        let mut s = RecoverySummary::default();
        for shard in &self.shards {
            let db = &shard.store.db;
            let r = db.recovery_report();
            let sc = db.scrub_report();
            s.shards += 1;
            s.wal_records_recovered += r.wal_records_recovered;
            s.wal_records_skipped += r.wal_records_skipped;
            s.wal_bytes_dropped += r.wal_bytes_dropped;
            s.manifest_records_dropped += r.manifest_records_dropped;
            s.orphan_files_dropped += r.orphan_files_dropped;
            s.recovery_files_quarantined += r.files_quarantined;
            s.scrub_bytes_verified += sc.bytes_verified;
            s.scrub_blocks_corrupt += sc.blocks_corrupt;
            s.scrub_blocks_corrected += sc.blocks_corrected;
            s.scrub_blocks_lost += sc.blocks_lost;
            s.scrub_files_repaired += sc.files_repaired;
            s.scrub_files_quarantined += sc.files_quarantined;
            s.scrub_extents_fenced += sc.extents_fenced;
            s.scrub_full_passes += sc.full_passes;
        }
        s
    }

    // ----- observability-driven placement -----

    /// The active shard under the most pressure, read off the per-shard
    /// observability bundles: routed operations served (router layer),
    /// write stalls, then write amplification break ties, and the
    /// lowest index wins exact ties — fully deterministic, so the
    /// split decision replays identically.
    pub fn hottest_shard(&self) -> usize {
        let mut best: Option<(u64, u64, u64, std::cmp::Reverse<usize>)> = None;
        let mut who = 0usize;
        for idx in self.active_shards() {
            let store = &self.shards[idx].store;
            let m = store.metrics_snapshot();
            let routed = m.obs.registry.counter(ObsLayer::Router, "ops");
            let s = store.stall_stats();
            let stalls = s.slowdown_count + s.stop_count + s.memtable_count;
            let wa_milli = (m.obs.registry.gauge(ObsLayer::Store, "wa") * 1000.0) as u64;
            let score = (routed, stalls, wa_milli, std::cmp::Reverse(idx));
            if best.is_none_or(|b| score > b) {
                best = Some(score);
                who = idx;
            }
        }
        who
    }

    /// Publishes the router-layer view of shard `idx` into its own obs
    /// bundle, namespaced by the store's instance label in exports.
    pub(crate) fn publish_router_obs(
        &mut self,
        idx: usize,
        ops: u64,
        write_calls: u64,
        depth_max: usize,
    ) {
        let store = &mut self.shards[idx].store;
        let ctx = store.db.ctx();
        let mut guard = ctx.lock();
        let obs = guard.fs.disk_mut().obs_mut();
        obs.counter_add(ObsLayer::Router, "ops", ops);
        obs.counter_add(ObsLayer::Router, "write_calls", write_calls);
        obs.gauge_set(ObsLayer::Router, "queue_depth_max", depth_max as f64);
    }
}

/// Builds shard `idx`'s store: own derived seed, instance label
/// `shard-{idx}` so per-shard metrics stay distinguishable.
fn build_shard_store(cfg: &ShardConfig, idx: usize) -> Result<Store> {
    let mut sc = StoreConfig::new(cfg.kind, cfg.sstable_size, cfg.disk_capacity);
    sc.seed = cfg
        .seed
        .wrapping_add((idx as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    sc = sc.with_instance(format!("shard-{idx}"));
    sc.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    const SST: u64 = 32 << 10;
    const CAP: u64 = 1 << 30;

    fn cluster(shards: usize) -> ShardCluster {
        ShardCluster::new(ShardConfig::new(shards, SST, CAP)).unwrap()
    }

    #[test]
    fn routed_ops_land_on_their_shard_and_read_back() {
        let mut c = cluster(4);
        let gen = RecordGenerator::new(16, 64, 7);
        for i in 0..300u64 {
            c.put(&gen.key(i), &gen.value(i)).unwrap();
        }
        for i in 0..300u64 {
            assert_eq!(c.get(&gen.key(i)).unwrap(), Some(gen.value(i)), "key {i}");
        }
        // Every shard took part of the keyspace.
        let counts = c.shard_key_counts().unwrap();
        assert!(counts.iter().all(|&n| n > 0), "placement {counts:?}");
        assert_eq!(counts.iter().sum::<u64>(), 300);
        // A delete routes to the same shard its put did.
        c.delete(&gen.key(5)).unwrap();
        assert_eq!(c.get(&gen.key(5)).unwrap(), None);
    }

    #[test]
    fn load_places_with_bounded_imbalance() {
        let mut c = cluster(4);
        let gen = RecordGenerator::new(16, 64, 7);
        let placed = c.load(&gen, 4000).unwrap();
        assert_eq!(placed.iter().sum::<u64>(), 4000);
        assert!(
            imbalance(&placed) <= 1.25,
            "load imbalance {:.3} over {placed:?}",
            imbalance(&placed)
        );
        assert_eq!(c.audit(&gen, 4000).unwrap().lost, 0);
    }

    #[test]
    fn scatter_gather_scan_merges_shards() {
        let mut c = cluster(3);
        let gen = RecordGenerator::new(16, 32, 3);
        for i in 0..200u64 {
            c.put(&gen.key(i), &gen.value(i)).unwrap();
        }
        let page = c.scan(b"", 50).unwrap();
        assert_eq!(page.len(), 50);
        // Globally sorted and globally first: a single-store oracle
        // loaded with the same records returns the same page.
        let mut oracle = StoreConfig::new(StoreKind::SealDb, SST, CAP)
            .build()
            .unwrap();
        for i in 0..200u64 {
            oracle.put(&gen.key(i), &gen.value(i)).unwrap();
        }
        assert_eq!(page, oracle.scan(b"", 50).unwrap());
    }

    #[test]
    fn shard_instances_namespace_metrics() {
        let c = cluster(2);
        assert_eq!(c.store(0).instance_name(), "shard-0");
        assert_eq!(c.store(1).instance_name(), "shard-1");
        let json = c.store(1).metrics_snapshot().to_json(0);
        assert!(json.contains("\"instance\":\"shard-1\""));
    }

    #[test]
    fn imbalance_math() {
        assert_eq!(imbalance(&[]), 1.0);
        assert_eq!(imbalance(&[0, 0]), 1.0);
        assert_eq!(imbalance(&[10, 10, 10]), 1.0);
        assert_eq!(imbalance(&[30, 10, 20]), 1.5);
    }

    #[test]
    fn recovery_summary_rolls_up_scrub_and_recovery_counters() {
        let mut c = cluster(3);
        let gen = RecordGenerator::new(16, 64, 7);
        c.load(&gen, 600).unwrap();
        // A clean cluster reads all-zero healing counters.
        let clean = c.recovery_summary();
        assert_eq!(clean.shards, 3);
        assert_eq!(clean.scrub_blocks_corrupt, 0);
        assert!(clean.scrub_accounting_balanced());
        // Narrow single-bit damage on shard 0, then a repairing scrub.
        {
            let store = c.store_mut(0);
            let f = store
                .db
                .current_version()
                .files
                .iter()
                .flatten()
                .max_by_key(|f| f.size)
                .expect("load left no tables")
                .clone();
            let ext = store.db.ctx().lock().fs.file_extent(f.id).unwrap();
            store
                .db
                .ctx()
                .lock()
                .fs
                .disk_mut()
                .faults_mut()
                .corrupt_extent(smr_sim::Extent::new(ext.offset + 100, 8));
            let cfg = lsm_core::ScrubConfig {
                bytes_per_step: 1 << 20,
                repair: true,
            };
            store.scrub_full(&cfg).unwrap();
        }
        let s = c.recovery_summary();
        assert_eq!(s.shards, 3);
        assert!(s.scrub_bytes_verified > 0);
        assert!(s.scrub_blocks_corrupt > 0, "scrub must find the damage");
        assert!(
            s.scrub_blocks_corrected > 0,
            "single-bit damage must correct: {s:?}"
        );
        assert!(s.scrub_accounting_balanced(), "{s:?}");
        // Gauge export: stable names, values straight from the fields.
        let g = s.gauges();
        assert_eq!(g.len(), 15);
        assert_eq!(g[0], ("cluster_shards", 3));
        assert!(g
            .iter()
            .any(|&(n, v)| n == "cluster_scrub_blocks_corrected" && v == s.scrub_blocks_corrected));
        // The damage never reached acked data.
        assert_eq!(c.audit(&gen, 600).unwrap().lost, 0);
    }

    #[test]
    fn same_seed_clusters_hash_identically() {
        let run = || {
            let mut c = cluster(3);
            let gen = RecordGenerator::new(16, 64, 9);
            c.load(&gen, 900).unwrap();
            c.state_hashes().unwrap()
        };
        assert_eq!(run(), run());
    }
}
