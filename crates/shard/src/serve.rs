//! The cluster serving loop: many clients, one router, N shard queues.
//!
//! A discrete-event simulation across every shard's simulated clock.
//! Arrivals are drawn exactly like `seal-front`'s single-store loop
//! (same op/key streams for a given seed) and routed at admission time;
//! each shard serves its own FIFO queue, merging queued writes behind a
//! serving write into one group commit under the shared
//! [`seal_front::group_fits`] cap semantics. The next event is always
//! the minimum over `(time, admission index, shard)` — arrivals and
//! service starts interleave deterministically no matter how many
//! shards run "in parallel".
//!
//! Throughput is aggregate: completed operations over the cluster span
//! (first service start to last completion on any shard). More shards
//! mean more disks serving concurrently, so saturation throughput
//! scales out until the hottest shard — zipfian traffic concentrates —
//! becomes the bottleneck.

use crate::ShardCluster;
use lsm_core::util::rng::XorShift64;
use lsm_core::{Result, WriteBatch};
use seal_front::{group_fits, LatencySummary};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use workloads::distributions::{Distribution, Latest, ScrambledZipfian, Uniform};
use workloads::ycsb::{Dist, WorkloadSpec};
use workloads::{ArrivalProcess, InterArrival, RecordGenerator};

/// Configuration of one cluster serving run.
#[derive(Clone, Debug)]
pub struct ClusterServeConfig {
    /// Number of virtual clients (cluster-wide).
    pub clients: usize,
    /// Total operations to serve across all clients and shards.
    pub total_ops: u64,
    /// Records preloaded into the cluster (the YCSB keyspace).
    pub record_count: u64,
    /// Operation mix and key distribution.
    pub spec: WorkloadSpec,
    /// Traffic shape (per client).
    pub arrival: ArrivalProcess,
    /// Seed for every RNG stream the run owns.
    pub seed: u64,
    /// Group-commit size cap in batch wire bytes (LevelDB: 1 MiB),
    /// enforced per shard.
    pub max_group_bytes: usize,
    /// Whether a shard's idle gaps run background compaction steps.
    pub idle_compaction: bool,
}

impl ClusterServeConfig {
    /// A serving run with the default group cap and idle compaction on.
    pub fn new(
        spec: WorkloadSpec,
        arrival: ArrivalProcess,
        clients: usize,
        total_ops: u64,
        record_count: u64,
    ) -> Self {
        ClusterServeConfig {
            clients,
            total_ops,
            record_count,
            spec,
            arrival,
            seed: 0x5EA1_F007,
            max_group_bytes: 1 << 20,
            idle_compaction: true,
        }
    }

    /// Same run with a different seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Everything one cluster serving run measured.
#[derive(Clone, Debug)]
pub struct ClusterServeResult {
    /// Active shards that served the run.
    pub shards: usize,
    /// Operations completed.
    pub ops: u64,
    /// Cluster span: first service start to last completion, ns.
    pub sim_ns: u64,
    /// Aggregate completed operations per simulated second.
    pub throughput_ops_per_sec: f64,
    /// End-to-end latency (arrival → completion): queueing + service.
    pub latency: LatencySummary,
    /// Queueing delay alone (arrival → service start).
    pub queue_delay: LatencySummary,
    /// Operations served by each shard slot (merged-away slots read 0).
    pub per_shard_ops: Vec<u64>,
    /// `Store::write` calls issued by each shard slot.
    pub per_shard_write_calls: Vec<u64>,
    /// Deepest per-shard queue observed at any service start.
    pub queue_depth_max: usize,
    /// Total `Store::write` calls (each one WAL append + sync).
    pub write_calls: u64,
    /// Write operations carried by those calls.
    pub write_ops: u64,
    /// Largest write group merged on any shard.
    pub max_group_len: usize,
    /// Largest committed group in wire bytes; never exceeds the cap
    /// unless a single oversized batch committed alone.
    pub max_group_wire: usize,
    /// Background compaction steps run in shard idle gaps.
    pub idle_compactions: u64,
    /// Point reads that found their key.
    pub hits: u64,
    /// Point reads that missed.
    pub misses: u64,
    /// Keyspace size after the run (preload plus serve-phase inserts) —
    /// the audit horizon.
    pub records_after: u64,
}

impl ClusterServeResult {
    /// Mean write operations per WAL commit (1.0 = no grouping).
    pub fn avg_group_size(&self) -> f64 {
        if self.write_calls == 0 {
            0.0
        } else {
            self.write_ops as f64 / self.write_calls as f64
        }
    }

    /// Max-over-mean of per-shard served operations (active slots).
    pub fn ops_imbalance(&self) -> f64 {
        let active: Vec<u64> = self
            .per_shard_ops
            .iter()
            .copied()
            .filter(|&n| n > 0)
            .collect();
        crate::imbalance(&active)
    }
}

/// One operation, decided at admission so queued writes are visible to
/// the shard's group commit.
enum Op {
    Get(Vec<u8>),
    Write(WriteBatch),
    Scan(Vec<u8>, usize),
    Rmw(Vec<u8>, Vec<u8>),
}

impl Op {
    /// The key whose hash routes this operation.
    fn route_key(&self) -> &[u8] {
        match self {
            Op::Get(k) | Op::Scan(k, _) | Op::Rmw(k, _) => k,
            Op::Write(b) => match b.iter().next() {
                Some((_, _, k, _)) => k,
                None => &[],
            },
        }
    }
}

/// A request sitting in one shard's queue.
struct Request {
    arrival_ns: u64,
    client: usize,
    op: Op,
}

/// Shared operation-drawing state, mirroring `seal-front`'s so a
/// cluster run draws the same op/key streams as a single-store run
/// with the same seed.
struct OpDraw<'a> {
    gen: &'a RecordGenerator,
    spec: WorkloadSpec,
    op_rng: XorShift64,
    key_rng: XorShift64,
    dist: Box<dyn Distribution>,
    n_now: u64,
}

impl<'a> OpDraw<'a> {
    fn new(gen: &'a RecordGenerator, spec: WorkloadSpec, record_count: u64, seed: u64) -> Self {
        let dist: Box<dyn Distribution> = match spec.dist {
            Dist::Uniform => Box::new(Uniform),
            Dist::Zipfian => Box::new(ScrambledZipfian::new(record_count)),
            Dist::Latest => Box::new(Latest::new(record_count * 2)),
        };
        OpDraw {
            gen,
            spec,
            op_rng: XorShift64::new(seed),
            key_rng: XorShift64::new(seed ^ 0xDEAD_BEEF),
            dist,
            n_now: record_count,
        }
    }

    fn draw(&mut self) -> Op {
        let r = (self.op_rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        let m = &self.spec.mix;
        if r < m.read {
            let i = self.dist.next(&mut self.key_rng, self.n_now);
            Op::Get(self.gen.key(i))
        } else if r < m.read + m.update {
            let i = self.dist.next(&mut self.key_rng, self.n_now);
            let mut b = WriteBatch::new();
            b.put(&self.gen.key(i), &self.gen.value(i));
            Op::Write(b)
        } else if r < m.read + m.update + m.insert {
            let i = self.n_now;
            self.n_now += 1;
            let mut b = WriteBatch::new();
            b.put(&self.gen.key(i), &self.gen.value(i));
            Op::Write(b)
        } else if r < m.read + m.update + m.insert + m.scan {
            let i = self.dist.next(&mut self.key_rng, self.n_now);
            let len = 1 + (self.key_rng.next_below(self.spec.max_scan_len as u64) as usize);
            Op::Scan(self.gen.key(i), len)
        } else {
            let i = self.dist.next(&mut self.key_rng, self.n_now);
            Op::Rmw(self.gen.key(i), self.gen.value(i))
        }
    }
}

/// Serves `cfg.total_ops` operations against a preloaded cluster and
/// reports aggregate latency and per-shard load.
///
/// Every active shard is flipped into deferred-compaction (serve) mode
/// for the duration and restored afterwards.
pub fn serve(
    cluster: &mut ShardCluster,
    gen: &RecordGenerator,
    cfg: &ClusterServeConfig,
) -> Result<ClusterServeResult> {
    assert!(cfg.clients > 0, "serve needs at least one client");
    let active = cluster.active_shards();
    assert!(!active.is_empty(), "serve needs at least one active shard");
    for &idx in &active {
        cluster.store_mut(idx).set_deferred_compaction(true);
    }
    let result = serve_loop(cluster, gen, cfg);
    for &idx in &active {
        cluster.store_mut(idx).set_deferred_compaction(false);
    }
    result
}

fn serve_loop(
    cluster: &mut ShardCluster,
    gen: &RecordGenerator,
    cfg: &ClusterServeConfig,
) -> Result<ClusterServeResult> {
    let start = cluster.sync_all();
    let slots = cluster.total_shards();
    let mut draw = OpDraw::new(gen, cfg.spec, cfg.record_count, cfg.seed);

    // Per-client traffic state: gap generator and unissued-op quota.
    let mut gaps: Vec<InterArrival> = (0..cfg.clients)
        .map(|c| InterArrival::new(cfg.arrival, cfg.seed ^ (0xC11E57 + c as u64 * 0x9E37_79B9)))
        .collect();
    let mut remaining: Vec<u64> = {
        let base = cfg.total_ops / cfg.clients as u64;
        let extra = (cfg.total_ops % cfg.clients as u64) as usize;
        (0..cfg.clients)
            .map(|c| base + u64::from(c < extra))
            .collect()
    };
    let open_loop = matches!(cfg.arrival, ArrivalProcess::OpenLoopPoisson { .. });

    // Future arrivals, ordered by (time, admission index, client); the
    // admission index breaks ties deterministically.
    let mut arrivals: BinaryHeap<Reverse<(u64, u64, usize)>> = BinaryHeap::new();
    let mut next_idx = 0u64;
    for c in 0..cfg.clients {
        if remaining[c] == 0 {
            continue;
        }
        let t = if open_loop {
            start + gaps[c].next_gap_ns()
        } else {
            start
        };
        arrivals.push(Reverse((t, next_idx, c)));
        next_idx += 1;
        remaining[c] -= 1;
    }

    let mut pending: Vec<VecDeque<Request>> = (0..slots).map(|_| VecDeque::new()).collect();
    let mut latencies: Vec<u64> = Vec::with_capacity(cfg.total_ops as usize);
    let mut queue_delays: Vec<u64> = Vec::with_capacity(cfg.total_ops as usize);
    let mut per_shard_ops = vec![0u64; slots];
    let mut per_shard_write_calls = vec![0u64; slots];
    let mut per_shard_depth_max = vec![0usize; slots];
    let mut write_calls = 0u64;
    let mut write_ops = 0u64;
    let mut max_group_len = 0usize;
    let mut max_group_wire = 0usize;
    let mut idle_compactions = 0u64;
    let mut hits = 0u64;
    let mut misses = 0u64;
    let mut completed = 0u64;
    let mut last_done = start;

    while completed < cfg.total_ops {
        // The next service event: the shard that can begin serving its
        // queue head earliest. A shard is ready at max(its disk clock,
        // the head's arrival); ties break by shard index.
        let next_service: Option<(u64, usize)> = (0..slots)
            .filter(|&s| !pending[s].is_empty())
            .map(|s| {
                let head = pending[s].front().expect("non-empty");
                (cluster.store(s).clock_ns().max(head.arrival_ns), s)
            })
            .min();

        // Admit every arrival due at or before the next service event
        // (or, with no serviceable shard, at the next arrival instant):
        // an admitted write becomes visible to the group commit of the
        // service it queues behind.
        if let Some(&Reverse((t_a, _, _))) = arrivals.peek() {
            let horizon = match next_service {
                Some((t_s, _)) => t_s,
                None => {
                    // Cluster fully idle: spend the gap on background
                    // compaction, shard by shard — the stand-in for the
                    // compaction threads sharing each disk.
                    if cfg.idle_compaction {
                        for s in cluster.active_shards() {
                            while cluster.store(s).clock_ns() < t_a
                                && cluster.store(s).needs_compaction()
                            {
                                if !cluster.store_mut(s).compact_step()? {
                                    break;
                                }
                                idle_compactions += 1;
                            }
                        }
                    }
                    t_a
                }
            };
            if t_a <= horizon {
                while let Some(&Reverse((t, _, c))) = arrivals.peek() {
                    if t > horizon {
                        break;
                    }
                    arrivals.pop();
                    let op = draw.draw();
                    let shard = cluster.route(op.route_key());
                    pending[shard].push_back(Request {
                        arrival_ns: t,
                        client: c,
                        op,
                    });
                    if open_loop && remaining[c] > 0 {
                        arrivals.push(Reverse((t + gaps[c].next_gap_ns(), next_idx, c)));
                        next_idx += 1;
                        remaining[c] -= 1;
                    }
                }
                continue; // recompute the service event with the new queue state
            }
        }

        let Some((t_s, s)) = next_service else {
            break; // no pending work and no arrivals left
        };

        // An idle gap before this shard's head arrived: drive its
        // background compaction, then let the clock catch up. The
        // compaction may overshoot — the request then queues behind it,
        // exactly like a foreground write behind a busy disk.
        let head_arrival = pending[s].front().expect("non-empty").arrival_ns;
        if cfg.idle_compaction {
            while cluster.store(s).clock_ns() < head_arrival && cluster.store(s).needs_compaction()
            {
                if !cluster.store_mut(s).compact_step()? {
                    break;
                }
                idle_compactions += 1;
            }
        }
        if cluster.store(s).clock_ns() < head_arrival {
            cluster.sync_shard_clock(s, head_arrival);
        }
        let _ = t_s;

        per_shard_depth_max[s] = per_shard_depth_max[s].max(pending[s].len());
        let service_start = cluster.store(s).clock_ns();
        let head = pending[s].pop_front().expect("non-empty queue");
        let mut members: Vec<(u64, usize)> = vec![(head.arrival_ns, head.client)];
        match head.op {
            Op::Write(mut batch) => {
                // Group commit: absorb queued writes behind the head on
                // THIS shard, under the shared cap semantics. A queued
                // request whose arrival is still in this shard's future
                // (admitted under another shard's later horizon) cannot
                // join a group that commits before it arrives.
                loop {
                    let fits = match pending[s].front() {
                        Some(next) if next.arrival_ns <= service_start => match &next.op {
                            Op::Write(b) => group_fits(&batch, b, cfg.max_group_bytes),
                            _ => false,
                        },
                        _ => false,
                    };
                    if !fits {
                        break;
                    }
                    let next = pending[s].pop_front().expect("checked front");
                    let Op::Write(b) = next.op else {
                        unreachable!("checked write")
                    };
                    batch.append(&b);
                    members.push((next.arrival_ns, next.client));
                }
                write_calls += 1;
                per_shard_write_calls[s] += 1;
                write_ops += members.len() as u64;
                max_group_len = max_group_len.max(members.len());
                max_group_wire = max_group_wire.max(batch.byte_size());
                cluster.store_mut(s).write(batch)?;
            }
            Op::Get(key) => {
                if cluster.store_mut(s).get(&key)?.is_some() {
                    hits += 1;
                } else {
                    misses += 1;
                }
            }
            Op::Scan(key, len) => {
                // Partition-local scan: the serving loop reads the
                // routed shard's range; cross-shard scans are the
                // scatter-gather `ShardCluster::scan` API.
                cluster.store_mut(s).scan(&key, len)?;
            }
            Op::Rmw(key, value) => {
                if cluster.store_mut(s).get(&key)?.is_some() {
                    hits += 1;
                } else {
                    misses += 1;
                }
                cluster.store_mut(s).put(&key, &value)?;
            }
        }
        let done = cluster.store(s).clock_ns();
        last_done = last_done.max(done);
        per_shard_ops[s] += members.len() as u64;
        for &(arrival, client) in &members {
            latencies.push(done - arrival);
            queue_delays.push(service_start - arrival);
            completed += 1;
            if !open_loop && remaining[client] > 0 {
                arrivals.push(Reverse((
                    done + gaps[client].next_gap_ns(),
                    next_idx,
                    client,
                )));
                next_idx += 1;
                remaining[client] -= 1;
            }
        }
    }

    let sim_ns = last_done - start;
    let latency = LatencySummary::from_samples(&mut latencies);
    let queue_delay = LatencySummary::from_samples(&mut queue_delays);
    let queue_depth_max = per_shard_depth_max.iter().copied().max().unwrap_or(0);
    let result = ClusterServeResult {
        shards: cluster.active_shards().len(),
        ops: completed,
        sim_ns,
        throughput_ops_per_sec: if sim_ns == 0 {
            0.0
        } else {
            completed as f64 * 1e9 / sim_ns as f64
        },
        latency,
        queue_delay,
        per_shard_ops,
        per_shard_write_calls,
        queue_depth_max,
        write_calls,
        write_ops,
        max_group_len,
        max_group_wire,
        idle_compactions,
        hits,
        misses,
        records_after: draw.n_now,
    };
    for s in cluster.active_shards() {
        cluster.publish_router_obs(
            s,
            result.per_shard_ops[s],
            result.per_shard_write_calls[s],
            per_shard_depth_max[s],
        );
    }
    // The cluster frontier advances to the last completion.
    let end = cluster.now_ns().max(last_done);
    for s in cluster.active_shards() {
        cluster.sync_shard_clock(s, end);
    }
    cluster.now_ns = end;
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ShardConfig;
    use workloads::WorkloadSpec as Spec;

    const SST: u64 = 32 << 10;
    const CAP: u64 = 1 << 30;

    fn serving_cluster(shards: usize, records: u64, gen: &RecordGenerator) -> ShardCluster {
        let mut c = ShardCluster::new(ShardConfig::new(shards, SST, CAP)).unwrap();
        c.load(gen, records).unwrap();
        c
    }

    fn closed(clients: usize, ops: u64, records: u64) -> ClusterServeConfig {
        ClusterServeConfig::new(
            Spec::serve_mix(),
            ArrivalProcess::ClosedLoop { think_ns: 0 },
            clients,
            ops,
            records,
        )
    }

    #[test]
    fn cluster_serves_all_ops_and_reads_hit() {
        let gen = RecordGenerator::new(16, 100, 1);
        let mut c = serving_cluster(4, 1200, &gen);
        let r = serve(&mut c, &gen, &closed(8, 800, 1200)).unwrap();
        assert_eq!(r.ops, 800);
        assert_eq!(r.shards, 4);
        assert!(r.sim_ns > 0);
        assert_eq!(r.misses, 0, "preloaded zipfian reads must not miss");
        assert_eq!(r.per_shard_ops.iter().sum::<u64>(), 800);
        assert!(
            r.per_shard_ops.iter().all(|&n| n > 0),
            "{:?}",
            r.per_shard_ops
        );
        // Serve-phase inserts grew the keyspace; audit re-reads all of it.
        assert!(r.records_after > 1200);
        let audit = c.audit(&gen, r.records_after).unwrap();
        assert_eq!(audit.lost, 0);
    }

    #[test]
    fn more_shards_raise_saturation_throughput() {
        let gen = RecordGenerator::new(16, 100, 1);
        let sat = |shards: usize| {
            let mut c = serving_cluster(shards, 1500, &gen);
            serve(&mut c, &gen, &closed(8, 600, 1500))
                .unwrap()
                .throughput_ops_per_sec
        };
        let one = sat(1);
        let four = sat(4);
        assert!(
            four > one,
            "4 shards ({four:.0} op/s) must out-serve 1 ({one:.0} op/s)"
        );
    }

    #[test]
    fn group_commit_forms_per_shard_and_respects_cap() {
        let gen = RecordGenerator::new(16, 100, 1);
        let mut c = serving_cluster(2, 800, &gen);
        let mut cfg = closed(8, 600, 800);
        cfg.max_group_bytes = 600;
        let r = serve(&mut c, &gen, &cfg).unwrap();
        assert_eq!(r.ops, 600);
        assert!(r.max_group_len > 1, "groups must form under 8 hot clients");
        assert!(
            r.max_group_wire <= cfg.max_group_bytes,
            "group of {} wire bytes overshot the {} cap",
            r.max_group_wire,
            cfg.max_group_bytes
        );
        assert!(r.write_calls < r.write_ops);
    }

    #[test]
    fn same_seed_cluster_serves_identically() {
        let gen = RecordGenerator::new(16, 100, 1);
        let go = |seed: u64| {
            let mut c = serving_cluster(3, 1000, &gen);
            let cfg = closed(6, 500, 1000).with_seed(seed);
            let r = serve(&mut c, &gen, &cfg).unwrap();
            (
                r.sim_ns,
                r.latency,
                r.per_shard_ops.clone(),
                c.state_hashes().unwrap(),
            )
        };
        let a = go(11);
        let b = go(11);
        assert_eq!(a, b);
        let c = go(12);
        assert_ne!(a.0, c.0, "a different seed must shift the schedule");
    }

    #[test]
    fn router_metrics_reach_each_shards_obs() {
        use smr_sim::ObsLayer;
        let gen = RecordGenerator::new(16, 100, 1);
        let mut c = serving_cluster(2, 600, &gen);
        let r = serve(&mut c, &gen, &closed(4, 300, 600)).unwrap();
        for s in c.active_shards() {
            let m = c.store(s).metrics_snapshot();
            assert_eq!(
                m.obs.registry.counter(ObsLayer::Router, "ops"),
                r.per_shard_ops[s],
                "shard {s}"
            );
            assert!(m
                .to_json(0)
                .contains(&format!("\"instance\":\"shard-{s}\"")));
        }
    }
}
