//! # smrdb — the SMRDB baseline
//!
//! The SEALDB paper compares against SMRDB \[24\] (Pitchumani et al.,
//! SYSTOR 2015), re-implemented "as faithfully as possible according to
//! the descriptions in its paper". Its design choices, quoted from
//! SEALDB §IV:
//!
//! * "enlarging SSTables to the band size" — the SSTable *is* a band
//!   (40 MB at paper scale, 10 × a LevelDB table);
//! * "assigning SSTables to dedicated bands" — a table always occupies
//!   one whole fixed band, so writing it is a pure band append and no
//!   auxiliary write amplification arises;
//! * "reserving only two levels for LSM-trees where key ranges of
//!   SSTables in the same level may be overlapped" — level 0 receives
//!   the (band-sized) memtable flushes, whose ranges overlap; level 1 is
//!   the sorted terminal level.
//!
//! This crate expresses that design as a configuration of the shared
//! [`lsm_core`] engine: two levels, band-sized write buffer and tables,
//! per-file placement over [`placement::FixedBandAlloc`]. The paper's
//! observed consequence — enormous compactions (~900 MB on average,
//! Fig. 10(b)) that "heavily slow down its random write performance" —
//! emerges from the configuration rather than being modelled directly.

use lsm_core::Options;

/// Fraction of a band usable by a table: the builder may overshoot its
/// split threshold by up to one block, so tables target 15/16 of the
/// band and always fit their dedicated band.
pub const BAND_FILL_NUM: u64 = 15;
/// Denominator of the band-fill fraction.
pub const BAND_FILL_DEN: u64 = 16;

/// SMRDB's L0 flush-count compaction trigger. Larger than LevelDB's 4:
/// with band-sized flushes, triggering less often amortises the huge
/// level-merge over more fresh data, which is what keeps SMRDB's
/// LSM-tree write amplification *below* LevelDB's (Fig. 12(a)) even
/// though each compaction is enormous.
pub const L0_TRIGGER: usize = 8;

/// Engine options for SMRDB given the SMR band size.
///
/// The returned options preserve SMRDB's structure at any scale: table
/// and write buffer sized to (almost) a band, two levels, no deeper
/// hierarchy.
pub fn smrdb_options(band_size: u64) -> Options {
    let table = band_size * BAND_FILL_NUM / BAND_FILL_DEN;
    let mut o = Options::scaled(table);
    o.num_levels = 2;
    o.l0_compaction_trigger = L0_TRIGGER;
    // Preserve LevelDB's 1:2:3 trigger/slowdown/stop ratio at SMRDB's
    // larger L0 trigger so serving backpressure scales with band-sized
    // flushes instead of firing on every one.
    o.l0_slowdown_trigger = 2 * L0_TRIGGER;
    o.l0_stop_trigger = 3 * L0_TRIGGER;
    // Level 1 is terminal; its budget is irrelevant but kept huge so the
    // score computation never considers it.
    o.level_base_bytes = u64::MAX / 4;
    // No grandparent level exists; keep outputs at full table size.
    o.max_grandparent_overlap_bytes = u64::MAX / 4;
    // The block-cache budget must not scale with SMRDB's band-sized
    // tables: all stores get the cache a regular LevelDB would have.
    o.block_cache_bytes = band_size / 5;
    o
}

#[cfg(test)]
mod tests {
    use super::*;

    const MB: u64 = 1 << 20;

    #[test]
    fn tables_fit_dedicated_bands() {
        let o = smrdb_options(40 * MB);
        assert!(o.sstable_size < 40 * MB);
        assert!(o.sstable_size >= 37 * MB);
        assert_eq!(o.write_buffer_size as u64, o.sstable_size);
    }

    #[test]
    fn two_level_structure() {
        let o = smrdb_options(40 * MB);
        assert_eq!(o.num_levels, 2);
        assert_eq!(o.l0_compaction_trigger, L0_TRIGGER);
    }
}
