//! Band-aligned key-value separation (WiscKey/HashKV on SMR): keys and
//! fixed-size pointers stay in the LSM tree, large values live in a
//! circular value log whose segments are whole dynamic bands obtained
//! from the placement allocator. Updates to a diverted key rewrite only
//! the pointer, so compaction stops carrying the value payload and the
//! update-driven write amplification collapses.
//!
//! The crate owns the *mechanics* — segment directory, record framing,
//! hot/cold grouping, torn-tail recovery, CRC scrub, GC scanning — and
//! stays below the store: every method borrows the [`FileStore`] and
//! [`PlacementPolicy`] for the duration of the call (the store threads
//! them through `DbCore::with_fs_and_policy`). Orchestration that needs
//! LSM reads or writes (liveness checks, pointer fixups, manifest
//! checkpoints) lives in the store, keeping this crate free of any
//! dependency on the database core's internals.
//!
//! Crash-safety contract:
//! - a value record is on disk **before** its pointer enters the WAL, so
//!   an acked pointer always resolves;
//! - the segment directory is checkpointed through the manifest's
//!   auxiliary blob ([`ValueLog::checkpoint`]); active segments are
//!   re-scanned on recovery and a torn tail is discarded;
//! - GC frees a victim segment only after the pointer fixups for every
//!   relocated record are durable, so no surviving pointer can reference
//!   freed bytes.

use lsm_core::util::coding::{get_varint64, put_varint64};
use lsm_core::util::crc32c::crc32c;
use lsm_core::{Error, FileStore, PlacementPolicy, Result, VLOG_FILE_BASE};
use smr_sim::{Extent, IoKind, ObsEventKind, ObsLayer};
use std::collections::{BTreeMap, BTreeSet};

/// Byte tag prefixing an LSM value stored inline (the raw bytes follow).
pub const INLINE_TAG: u8 = 0;
/// Byte tag prefixing an LSM value that is a value-log pointer.
pub const POINTER_TAG: u8 = 1;

/// Fixed on-disk size of an encoded pointer: tag + segment + offset + length.
pub const POINTER_BYTES: usize = 1 + 8 + 8 + 8;

/// Per-record framing overhead: crc32c + key length + value length.
const RECORD_HEADER: u64 = 4 + 4 + 4;

/// Location of one value record inside the log.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct VlogPtr {
    /// Segment file id (always `>= VLOG_FILE_BASE`).
    pub segment: u64,
    /// Record start offset within the segment.
    pub offset: u64,
    /// Total record length (header + key + value).
    pub len: u64,
}

/// A decoded LSM value: either the raw bytes or a log pointer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StoredValue<'a> {
    /// The value itself, stored inline in the LSM.
    Inline(&'a [u8]),
    /// A pointer into the value log.
    Pointer(VlogPtr),
}

/// Encodes a value for inline storage in the LSM.
pub fn encode_inline(value: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(1 + value.len());
    out.push(INLINE_TAG);
    out.extend_from_slice(value);
    out
}

/// Encodes a value-log pointer for storage in the LSM.
pub fn encode_pointer(ptr: VlogPtr) -> Vec<u8> {
    let mut out = Vec::with_capacity(POINTER_BYTES);
    out.push(POINTER_TAG);
    out.extend_from_slice(&ptr.segment.to_le_bytes());
    out.extend_from_slice(&ptr.offset.to_le_bytes());
    out.extend_from_slice(&ptr.len.to_le_bytes());
    out
}

/// Decodes an LSM value written by [`encode_inline`] / [`encode_pointer`].
pub fn decode_stored(stored: &[u8]) -> Result<StoredValue<'_>> {
    match stored.first() {
        Some(&INLINE_TAG) => Ok(StoredValue::Inline(&stored[1..])),
        Some(&POINTER_TAG) if stored.len() == POINTER_BYTES => {
            let u64_at = |i: usize| {
                let mut b = [0u8; 8];
                b.copy_from_slice(&stored[i..i + 8]);
                u64::from_le_bytes(b)
            };
            Ok(StoredValue::Pointer(VlogPtr {
                segment: u64_at(1),
                offset: u64_at(9),
                len: u64_at(17),
            }))
        }
        _ => Err(Error::Corruption(format!(
            "undecodable stored value ({} byte(s), tag {:?})",
            stored.len(),
            stored.first()
        ))),
    }
}

/// Tuning knobs for the value log.
#[derive(Clone, Copy, Debug)]
pub struct VlogParams {
    /// Segment capacity in bytes; sized to a whole SMR band so each
    /// segment occupies exactly one dynamic band.
    pub segment_bytes: u64,
    /// Values of at least this many bytes are diverted to the log;
    /// smaller values stay inline in the LSM.
    pub value_threshold: usize,
    /// Width of the hashed update-count sketch driving hot/cold grouping.
    pub hot_buckets: usize,
    /// Bucket update count at or above which a key is routed to the hot
    /// segment class.
    pub hot_threshold: u32,
    /// Halve every sketch bucket after this many recorded updates, so
    /// the hotness estimate tracks the recent past rather than all time.
    pub sketch_decay_every: u64,
}

impl Default for VlogParams {
    fn default() -> Self {
        VlogParams {
            segment_bytes: 16 << 20,
            value_threshold: 512,
            hot_buckets: 1024,
            hot_threshold: 2,
            sketch_decay_every: 1 << 16,
        }
    }
}

/// Segment temperature class under HashKV-style grouping.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SegClass {
    /// Frequently updated keys: dies fast, GC'd cheaply.
    Hot,
    /// Rarely updated keys: mostly live, GC rarely touches it.
    Cold,
}

impl SegClass {
    fn index(self) -> usize {
        match self {
            SegClass::Hot => 0,
            SegClass::Cold => 1,
        }
    }
}

#[derive(Clone, Copy, Debug)]
struct Segment {
    ext: Extent,
    used: u64,
    sealed: bool,
    class: SegClass,
}

/// Known-garbage records of one segment, fed by
/// [`ValueLog::note_dead`]. Advisory only: the set is not
/// checkpointed, so a reopen starts empty and the counters rebuild as
/// later overwrites land — GC then falls back to treating every record
/// as potentially live, which is safe (just slower).
#[derive(Clone, Debug, Default)]
struct DeadSet {
    bytes: u64,
    offsets: BTreeSet<u64>,
}

/// Lifetime byte counters for the log (monotonic, survive checkpoints
/// only in spirit — they reset on reopen; the obs layer keeps history).
#[derive(Clone, Copy, Debug, Default)]
pub struct VlogStats {
    /// Record bytes appended on behalf of user writes.
    pub appended_bytes: u64,
    /// Record bytes rewritten by GC relocation.
    pub relocated_bytes: u64,
    /// Segment bytes returned to the allocator by GC or quarantine.
    pub reclaimed_bytes: u64,
    /// Segments opened over the log's lifetime.
    pub segments_opened: u64,
    /// Segments retired (GC'd or quarantined).
    pub segments_retired: u64,
}

/// What recovery found and did. All counts are per-reopen.
#[derive(Clone, Copy, Debug, Default)]
pub struct VlogRecoveryReport {
    /// Segments restored from the manifest checkpoint.
    pub segments_recovered: usize,
    /// Bytes discarded from active-segment tails (records written but
    /// torn or never acked — their pointers never reached the WAL).
    pub torn_tail_bytes: u64,
    /// Segment files on disk that no checkpoint referenced (crash
    /// between allocation and checkpoint commit); returned to the
    /// allocator.
    pub orphan_segments_dropped: usize,
}

/// One record surfaced by a GC or salvage scan.
#[derive(Clone, Debug)]
pub struct GcEntry {
    /// The user key the record was written under.
    pub key: Vec<u8>,
    /// Where the record currently lives.
    pub ptr: VlogPtr,
    /// The value payload.
    pub value: Vec<u8>,
}

/// Result of one budgeted GC scan step.
#[derive(Clone, Debug)]
pub struct GcScan {
    /// The victim segment being drained.
    pub segment: u64,
    /// Records scanned this step, in log order. The caller decides
    /// liveness (current LSM pointer equals `ptr`) and relocates.
    pub entries: Vec<GcEntry>,
    /// True once the victim is fully scanned; the caller must make its
    /// pointer fixups durable and then call [`ValueLog::retire_segment`].
    pub finished: bool,
}

/// Result of one budgeted scrub step over the log.
#[derive(Clone, Debug, Default)]
pub struct VlogScrubStep {
    /// Bytes of record data verified this step.
    pub bytes_scanned: u64,
    /// Records whose CRC checked out.
    pub records_ok: u64,
    /// Segments in which a CRC mismatch was found. Framing is
    /// unrecoverable past the first bad record, so the whole segment is
    /// reported for salvage + quarantine.
    pub damaged: Vec<u64>,
}

const CHECKPOINT_VERSION: u8 = 1;
const FLAG_SEALED: u8 = 1;
const FLAG_HOT: u8 = 2;

/// The value log: a directory of band-sized segments, two active append
/// heads (hot and cold), an update-count sketch, and cursors for the
/// cooperative GC and scrub walks.
#[derive(Debug)]
pub struct ValueLog {
    params: VlogParams,
    segments: BTreeMap<u64, Segment>,
    active: [Option<u64>; 2],
    next_seg: u64,
    sketch: Vec<u32>,
    sketch_total: u64,
    gc_cursor: Option<(u64, u64)>,
    scrub_cursor: Option<(u64, u64)>,
    gc_relocated_from_victim: u64,
    dead: BTreeMap<u64, DeadSet>,
    latest: BTreeMap<Vec<u8>, VlogPtr>,
    dead_exact: bool,
    dirty: bool,
    stats: VlogStats,
}

impl ValueLog {
    /// Creates an empty log.
    pub fn new(params: VlogParams) -> ValueLog {
        let buckets = params.hot_buckets.max(1);
        ValueLog {
            params,
            segments: BTreeMap::new(),
            active: [None, None],
            next_seg: 0,
            sketch: vec![0; buckets],
            sketch_total: 0,
            gc_cursor: None,
            scrub_cursor: None,
            gc_relocated_from_victim: 0,
            dead: BTreeMap::new(),
            latest: BTreeMap::new(),
            dead_exact: true,
            dirty: false,
            stats: VlogStats::default(),
        }
    }

    /// The parameters the log was opened with.
    pub fn params(&self) -> &VlogParams {
        &self.params
    }

    /// Lifetime byte counters.
    pub fn stats(&self) -> VlogStats {
        self.stats
    }

    /// Number of segments currently in the directory.
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// Ids of every segment in the directory, ascending (used to seed
    /// the debug-build ordering auditor after recovery).
    pub fn segment_ids(&self) -> Vec<u64> {
        self.segments.keys().copied().collect()
    }

    /// True when a value of this size should be diverted to the log.
    pub fn should_divert(&self, value_len: usize) -> bool {
        value_len >= self.params.value_threshold
    }

    /// True when directory state changed since the last
    /// [`ValueLog::checkpoint`] call — the store must commit a fresh
    /// checkpoint through the manifest before acking dependent writes.
    pub fn take_dirty(&mut self) -> bool {
        std::mem::take(&mut self.dirty)
    }

    fn bucket(&self, key: &[u8]) -> usize {
        // FNV-1a: deterministic, seed-free, good enough for a coarse
        // update-frequency sketch.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in key {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        (h % self.sketch.len() as u64) as usize
    }

    /// Records an update to `key` in the hotness sketch and returns the
    /// segment class the write should land in.
    pub fn classify(&mut self, key: &[u8]) -> SegClass {
        let b = self.bucket(key);
        self.sketch[b] = self.sketch[b].saturating_add(1);
        self.sketch_total += 1;
        if self.sketch_total >= self.params.sketch_decay_every {
            for c in &mut self.sketch {
                *c /= 2;
            }
            self.sketch_total = 0;
        }
        if self.sketch[b] >= self.params.hot_threshold {
            SegClass::Hot
        } else {
            SegClass::Cold
        }
    }

    fn encode_record(key: &[u8], value: &[u8]) -> Vec<u8> {
        let mut body = Vec::with_capacity(8 + key.len() + value.len());
        body.extend_from_slice(&(key.len() as u32).to_le_bytes());
        body.extend_from_slice(&(value.len() as u32).to_le_bytes());
        body.extend_from_slice(key);
        body.extend_from_slice(value);
        let mut rec = Vec::with_capacity(4 + body.len());
        rec.extend_from_slice(&crc32c(&body).to_le_bytes());
        rec.extend_from_slice(&body);
        rec
    }

    fn decode_record(bytes: &[u8]) -> Result<(Vec<u8>, Vec<u8>)> {
        if bytes.len() < RECORD_HEADER as usize {
            return Err(Error::Corruption(format!(
                "value-log record shorter than its header ({} byte(s))",
                bytes.len()
            )));
        }
        let stored_crc = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
        let body = &bytes[4..];
        if crc32c(body) != stored_crc {
            return Err(Error::Corruption(format!(
                "value-log record checksum mismatch: stored {stored_crc:#010x}, \
                 computed {:#010x} over {} body byte(s)",
                crc32c(body),
                body.len()
            )));
        }
        let klen = u32::from_le_bytes([body[0], body[1], body[2], body[3]]) as usize;
        let vlen = u32::from_le_bytes([body[4], body[5], body[6], body[7]]) as usize;
        if body.len() != 8 + klen + vlen {
            return Err(Error::Corruption(format!(
                "value-log record length mismatch: header says {}+{}, body is {}",
                klen,
                vlen,
                body.len() - 8
            )));
        }
        Ok((body[8..8 + klen].to_vec(), body[8 + klen..].to_vec()))
    }

    fn open_segment(
        &mut self,
        fs: &mut FileStore,
        policy: &mut dyn PlacementPolicy,
        class: SegClass,
    ) -> Result<u64> {
        let id = VLOG_FILE_BASE + self.next_seg;
        self.next_seg += 1;
        let ext = policy.place_vlog_segment(fs, id, self.params.segment_bytes)?;
        self.segments.insert(
            id,
            Segment {
                ext,
                used: 0,
                sealed: false,
                class,
            },
        );
        self.active[class.index()] = Some(id);
        self.stats.segments_opened += 1;
        self.dirty = true;
        fs.disk_mut().obs_event(
            ObsLayer::ValueLog,
            ObsEventKind::VlogSegmentOpen,
            id,
            ext.len,
        );
        Ok(id)
    }

    /// Seals a segment so no further appends land in it. Used before
    /// salvaging a damaged active segment — relocation must not write
    /// into the band about to be quarantined.
    pub fn seal(&mut self, fs: &mut FileStore, id: u64) {
        self.seal_segment(fs, id);
    }

    fn seal_segment(&mut self, fs: &mut FileStore, id: u64) {
        if let Some(seg) = self.segments.get_mut(&id) {
            seg.sealed = true;
            let used = seg.used;
            if self.active[seg.class.index()] == Some(id) {
                self.active[seg.class.index()] = None;
            }
            self.dirty = true;
            fs.disk_mut()
                .obs_event(ObsLayer::ValueLog, ObsEventKind::VlogSegmentSeal, id, used);
        }
    }

    fn append_record(
        &mut self,
        fs: &mut FileStore,
        policy: &mut dyn PlacementPolicy,
        class: SegClass,
        key: &[u8],
        value: &[u8],
        kind: IoKind,
    ) -> Result<VlogPtr> {
        let rec = Self::encode_record(key, value);
        let rec_len = rec.len() as u64;
        if rec_len > self.params.segment_bytes {
            return Err(Error::InvalidArgument(format!(
                "value-log record of {rec_len} bytes exceeds the {}-byte segment capacity",
                self.params.segment_bytes
            )));
        }
        // Seal the active segment when the record does not fit, then
        // open a fresh band for this class.
        if let Some(id) = self.active[class.index()] {
            let seg = self.segments[&id];
            // Writable capacity is `segment_bytes` even when the policy
            // over-allocated the extent: on raw HM-SMR the surplus is
            // the guard slack absorbing this append's shingle-damage
            // window, and must stay unwritten.
            if seg.used + rec_len > self.params.segment_bytes.min(seg.ext.len) {
                self.seal_segment(fs, id);
            }
        }
        let id = match self.active[class.index()] {
            Some(id) => id,
            None => self.open_segment(fs, policy, class)?,
        };
        let offset = self.segments[&id].used;
        fs.write_file_range(id, offset, &rec, kind)?;
        if let Some(seg) = self.segments.get_mut(&id) {
            seg.used += rec_len;
        }
        match kind {
            IoKind::VlogGc => self.stats.relocated_bytes += rec_len,
            _ => self.stats.appended_bytes += rec_len,
        }
        let counter = match kind {
            IoKind::VlogGc => "relocated_bytes",
            _ => "appended_bytes",
        };
        fs.disk_mut()
            .obs_mut()
            .counter_add(ObsLayer::ValueLog, counter, rec_len);
        let ptr = VlogPtr {
            segment: id,
            offset,
            len: rec_len,
        };
        // Exact garbage accounting: this record supersedes the key's
        // previous log copy (an overwrite, or the old address of a GC
        // relocation), so that copy is now dead. The in-memory pointer
        // index is the HashKV per-group-metadata analogue — it costs no
        // I/O, unlike resolving the old pointer through the LSM.
        if let Some(prev) = self.latest.insert(key.to_vec(), ptr) {
            self.note_dead(prev);
        }
        Ok(ptr)
    }

    /// Appends a user value, routed hot or cold by the update sketch.
    /// The record is on disk when this returns — the caller may then
    /// safely commit the pointer through the WAL.
    pub fn append(
        &mut self,
        fs: &mut FileStore,
        policy: &mut dyn PlacementPolicy,
        key: &[u8],
        value: &[u8],
    ) -> Result<VlogPtr> {
        let class = self.classify(key);
        self.append_record(fs, policy, class, key, value, IoKind::VlogAppend)
    }

    /// Rewrites a live record during GC into the current segment of its
    /// (freshly classified) class.
    pub fn relocate(
        &mut self,
        fs: &mut FileStore,
        policy: &mut dyn PlacementPolicy,
        key: &[u8],
        value: &[u8],
    ) -> Result<VlogPtr> {
        // GC relocation must not inflate the hotness sketch: a key is
        // not "updated" because its segment was collected.
        let b = self.bucket(key);
        let class = if self.sketch[b] >= self.params.hot_threshold {
            SegClass::Hot
        } else {
            SegClass::Cold
        };
        let ptr = self.append_record(fs, policy, class, key, value, IoKind::VlogGc)?;
        self.gc_relocated_from_victim += ptr.len;
        Ok(ptr)
    }

    /// Resolves a pointer, verifying the record checksum and that the
    /// record was written under `expected_key`. A pointer into a freed
    /// or quarantined segment fails (the read surfaces the store's
    /// degraded path), never returns stale bytes.
    pub fn read(&self, fs: &mut FileStore, ptr: VlogPtr, expected_key: &[u8]) -> Result<Vec<u8>> {
        let seg = self.segments.get(&ptr.segment).ok_or_else(|| {
            Error::Corruption(format!(
                "value-log pointer references unknown segment {}",
                ptr.segment
            ))
        })?;
        if ptr.offset + ptr.len > seg.used {
            return Err(Error::Corruption(format!(
                "value-log pointer {}+{} past segment {} tail at {}",
                ptr.offset, ptr.len, ptr.segment, seg.used
            )));
        }
        let bytes = fs.read_file(ptr.segment, ptr.offset, ptr.len, IoKind::Get)?;
        let (key, value) = Self::decode_record(&bytes)?;
        if key != expected_key {
            return Err(Error::Corruption(format!(
                "value-log record key mismatch at segment {} offset {}",
                ptr.segment, ptr.offset
            )));
        }
        Ok(value)
    }

    // ----- checkpoint + recovery -----

    /// Serialises the segment directory for the manifest's auxiliary
    /// blob. Cheap and rare: only segment opens/seals/retirements dirty
    /// the directory; record appends do not.
    pub fn checkpoint(&self) -> Vec<u8> {
        let mut out = vec![CHECKPOINT_VERSION];
        put_varint64(&mut out, self.next_seg);
        for class in [SegClass::Hot, SegClass::Cold] {
            // 0 = no active segment; otherwise 1 + segment index.
            let v = self.active[class.index()].map_or(0, |id| 1 + (id - VLOG_FILE_BASE));
            put_varint64(&mut out, v);
        }
        put_varint64(&mut out, self.segments.len() as u64);
        for (id, seg) in &self.segments {
            put_varint64(&mut out, id - VLOG_FILE_BASE);
            put_varint64(&mut out, seg.ext.offset);
            put_varint64(&mut out, seg.ext.len);
            put_varint64(&mut out, seg.used);
            let mut flags = 0u8;
            if seg.sealed {
                flags |= FLAG_SEALED;
            }
            if seg.class == SegClass::Hot {
                flags |= FLAG_HOT;
            }
            out.push(flags);
        }
        out
    }

    fn take_varint(src: &mut &[u8]) -> Result<u64> {
        match get_varint64(src) {
            Some((v, n)) => {
                *src = &src[n..];
                Ok(v)
            }
            None => Err(Error::Corruption(format!(
                "truncated varint in value-log checkpoint with {} byte(s) left",
                src.len()
            ))),
        }
    }

    /// Rebuilds the directory from a manifest checkpoint (or from
    /// nothing), re-scans active segments for their true tails, and
    /// reconciles the segment files on disk against the directory:
    /// checkpointed-but-missing segments are forgotten, on-disk-but-
    /// unreferenced segments (a crash between allocation and checkpoint
    /// commit) are returned to the allocator.
    pub fn recover(
        &mut self,
        fs: &mut FileStore,
        policy: &mut dyn PlacementPolicy,
        blob: Option<&[u8]>,
    ) -> Result<VlogRecoveryReport> {
        let mut report = VlogRecoveryReport::default();
        self.segments.clear();
        self.active = [None, None];
        self.next_seg = 0;
        self.gc_cursor = None;
        self.scrub_cursor = None;
        self.gc_relocated_from_victim = 0;
        if let Some(mut src) = blob {
            match src.first() {
                Some(&CHECKPOINT_VERSION) => src = &src[1..],
                other => {
                    return Err(Error::Corruption(format!(
                        "unknown value-log checkpoint version {other:?}"
                    )))
                }
            }
            self.next_seg = Self::take_varint(&mut src)?;
            let mut active_raw = [0u64; 2];
            for slot in &mut active_raw {
                *slot = Self::take_varint(&mut src)?;
            }
            let count = Self::take_varint(&mut src)?;
            for _ in 0..count {
                let idx = Self::take_varint(&mut src)?;
                let offset = Self::take_varint(&mut src)?;
                let len = Self::take_varint(&mut src)?;
                let used = Self::take_varint(&mut src)?;
                let flags = match src.first() {
                    Some(&f) => {
                        src = &src[1..];
                        f
                    }
                    None => {
                        return Err(Error::Corruption(format!(
                            "truncated segment flags in value-log checkpoint \
                             at segment index {idx}"
                        )))
                    }
                };
                self.segments.insert(
                    VLOG_FILE_BASE + idx,
                    Segment {
                        ext: Extent::new(offset, len),
                        used,
                        sealed: flags & FLAG_SEALED != 0,
                        class: if flags & FLAG_HOT != 0 {
                            SegClass::Hot
                        } else {
                            SegClass::Cold
                        },
                    },
                );
            }
            for (slot, raw) in active_raw.into_iter().enumerate() {
                if raw > 0 {
                    self.active[slot] = Some(VLOG_FILE_BASE + raw - 1);
                }
            }
        }
        // Forget checkpointed segments whose file is gone (should not
        // happen — retirement re-checkpoints before anything else can
        // crash-commit — but a dangling entry must not serve reads).
        let on_disk: BTreeMap<u64, Extent> = fs
            .file_extents()
            .into_iter()
            .filter(|(id, _)| *id >= VLOG_FILE_BASE)
            .collect();
        let missing: Vec<u64> = self
            .segments
            .keys()
            .filter(|id| !on_disk.contains_key(id))
            .copied()
            .collect();
        for id in missing {
            self.segments.remove(&id);
            for slot in &mut self.active {
                if *slot == Some(id) {
                    *slot = None;
                }
            }
            self.dirty = true;
        }
        // Drop segment files no checkpoint references.
        for id in on_disk.keys() {
            if !self.segments.contains_key(id) {
                policy.delete_file(fs, *id)?;
                report.orphan_segments_dropped += 1;
            }
        }
        // Recompute active tails: records past the last checkpoint may
        // be intact (their pointers replay from the WAL) or torn.
        let actives: Vec<u64> = self.active.iter().flatten().copied().collect();
        for id in actives {
            let scanned = self.scan_tail(fs, id)?;
            // Torn or unacked bytes past the recovered tail are still
            // valid on the shingled disk, and appending over them would
            // trip the overlap guard. A 1-byte probe detects them
            // (appends are sequential, so disk-valid bytes form a
            // contiguous prefix); if present, seal the segment so new
            // writes open a fresh band instead.
            let dirty_tail = fs.read_file(id, scanned, 1, IoKind::Meta).is_ok();
            if let Some(seg) = self.segments.get_mut(&id) {
                if scanned < seg.used {
                    report.torn_tail_bytes += seg.used - scanned;
                }
                seg.used = scanned;
                if dirty_tail {
                    seg.sealed = true;
                }
            }
            if dirty_tail {
                for slot in &mut self.active {
                    if *slot == Some(id) {
                        *slot = None;
                    }
                }
                self.dirty = true;
            }
        }
        report.segments_recovered = self.segments.len();
        // The pointer index and dead sets are in-memory only: any
        // recovered segment may hold garbage we no longer know about,
        // so GC must re-verify liveness through the LSM from here on.
        self.dead_exact = self.segments.is_empty();
        Ok(report)
    }

    /// Walks records from offset 0 and returns the offset of the first
    /// byte that is not part of an intact record — the recovered tail.
    fn scan_tail(&self, fs: &mut FileStore, id: u64) -> Result<u64> {
        let Some(seg) = self.segments.get(&id) else {
            return Err(Error::InvalidArgument(format!(
                "tail scan of unknown value-log segment {id}"
            )));
        };
        let cap = seg.ext.len;
        let mut off = 0u64;
        loop {
            if off + RECORD_HEADER > cap {
                break;
            }
            // An unwritten tail reads as an error on the simulated SMR
            // disk (the extent is not fully valid): that is the clean
            // end of the log, not a failure.
            let Ok(header) = fs.read_file(id, off, RECORD_HEADER, IoKind::Meta) else {
                break;
            };
            let klen = u64::from(u32::from_le_bytes([
                header[4], header[5], header[6], header[7],
            ]));
            let vlen = u64::from(u32::from_le_bytes([
                header[8], header[9], header[10], header[11],
            ]));
            let rec_len = RECORD_HEADER + klen + vlen;
            if off + rec_len > cap {
                break;
            }
            let Ok(bytes) = fs.read_file(id, off, rec_len, IoKind::Meta) else {
                break;
            };
            if Self::decode_record(&bytes).is_err() {
                break;
            }
            off += rec_len;
        }
        Ok(off)
    }

    // ----- garbage collection -----

    /// Marks the record at `ptr` as garbage. The store calls this when
    /// an overwrite or delete supersedes a key whose current value
    /// lives in the log — the superseded record can never be read again
    /// through the LSM, so the mark is definitive. The per-segment
    /// counters drive victim selection ([`ValueLog::gc_candidate`]) and
    /// let the GC scan skip known-dead records without an LSM liveness
    /// query. They are advisory and not checkpointed: a reopen starts
    /// from zero and rebuilds as traffic arrives.
    pub fn note_dead(&mut self, ptr: VlogPtr) {
        if !self.segments.contains_key(&ptr.segment) {
            return;
        }
        let set = self.dead.entry(ptr.segment).or_default();
        if set.offsets.insert(ptr.offset) {
            set.bytes += ptr.len;
        }
    }

    /// Whether the in-memory pointer index has an entry for `key` —
    /// i.e. the log itself will account the key's current record dead
    /// on the next supersession. False after a reopen until the key is
    /// touched again; the store then probes the LSM once for a stale
    /// pre-crash pointer so recovered garbage is not leaked forever.
    pub fn knows_key(&self, key: &[u8]) -> bool {
        self.latest.contains_key(key)
    }

    /// Known-garbage bytes in a segment (0 for unknown segments).
    pub fn dead_bytes(&self, segment: u64) -> u64 {
        self.dead.get(&segment).map_or(0, |d| d.bytes)
    }

    /// Marks the key's current log record (if any) dead: the key was
    /// deleted, or its new value is stored inline below the threshold.
    pub fn note_delete(&mut self, key: &[u8]) {
        if let Some(prev) = self.latest.remove(key) {
            self.note_dead(prev);
        }
    }

    /// True while the dead-record accounting is complete: every record
    /// not marked dead is provably live, so GC may relocate scan
    /// entries without consulting the LSM. Exactness holds from a fresh
    /// log but is lost on recovery (the in-memory index is not
    /// persisted) — after a reopen the caller must fall back to
    /// per-entry LSM liveness checks, or a pre-crash overwrite could be
    /// resurrected by a GC pointer fixup.
    pub fn dead_is_exact(&self) -> bool {
        self.dead_exact
    }

    /// Chooses the next GC victim: the sealed segment with the most
    /// known-dead bytes, ties broken oldest-first. Returns `None` when
    /// no sealed segment has any noted garbage — draining a fully live
    /// band would only churn data, so the GC idles instead. (After a
    /// reopen the dead counters start empty; garbage becomes visible
    /// again as overwrites land.)
    pub fn gc_candidate(&self) -> Option<u64> {
        self.segments
            .iter()
            .filter(|(id, s)| s.sealed && self.dead_bytes(**id) > 0)
            .max_by_key(|(id, _)| (self.dead_bytes(**id), std::cmp::Reverse(**id)))
            .map(|(id, _)| *id)
    }

    /// Scans up to `budget_bytes` of the current victim (choosing one if
    /// no scan is in progress), returning the records encountered.
    /// Records already marked dead via [`ValueLog::note_dead`] are
    /// skipped outright — their bytes count against the budget but no
    /// entry (and hence no LSM liveness query) is produced for them.
    /// The caller checks each remaining entry's liveness against the
    /// LSM, relocates live ones, and — once `finished` — makes the
    /// pointer fixups durable before retiring the victim. A crash
    /// mid-scan is safe: the cursor is not persisted, the rescan skips
    /// already-relocated records because they are no longer live at
    /// their old address.
    pub fn gc_scan(&mut self, fs: &mut FileStore, budget_bytes: u64) -> Result<Option<GcScan>> {
        let (victim, mut off) = match self.gc_cursor {
            Some(cur) => cur,
            None => {
                let Some(victim) = self.gc_candidate() else {
                    return Ok(None);
                };
                self.gc_relocated_from_victim = 0;
                (victim, 0)
            }
        };
        let used = self.segments[&victim].used;
        // One sequential read covers the whole step: GC is a streaming
        // scan, and per-record reads would pay a head seek each on the
        // simulated disk.
        let chunk_end = used.min(off + budget_bytes);
        let chunk = if chunk_end > off {
            fs.read_file(victim, off, chunk_end - off, IoKind::Meta)?
        } else {
            Vec::new()
        };
        let chunk_base = off;
        let mut entries = Vec::new();
        while off < chunk_end {
            let at = (off - chunk_base) as usize;
            let Some(header) = chunk.get(at..at + RECORD_HEADER as usize) else {
                break;
            };
            let klen = u64::from(u32::from_le_bytes([
                header[4], header[5], header[6], header[7],
            ]));
            let vlen = u64::from(u32::from_le_bytes([
                header[8], header[9], header[10], header[11],
            ]));
            let rec_len = RECORD_HEADER + klen + vlen;
            let Some(bytes) = chunk.get(at..at + rec_len as usize) else {
                // Record straddles the budget boundary; resume here.
                break;
            };
            let known_dead = self
                .dead
                .get(&victim)
                .is_some_and(|d| d.offsets.contains(&off));
            if !known_dead {
                let (key, value) = Self::decode_record(bytes)?;
                entries.push(GcEntry {
                    key,
                    ptr: VlogPtr {
                        segment: victim,
                        offset: off,
                        len: rec_len,
                    },
                    value,
                });
            }
            off += rec_len;
        }
        if off == chunk_base && off < used {
            // The budget is smaller than the next record: read it
            // whole anyway so the scan always advances.
            let header = fs.read_file(victim, off, RECORD_HEADER, IoKind::Meta)?;
            let klen = u64::from(u32::from_le_bytes([
                header[4], header[5], header[6], header[7],
            ]));
            let vlen = u64::from(u32::from_le_bytes([
                header[8], header[9], header[10], header[11],
            ]));
            let rec_len = RECORD_HEADER + klen + vlen;
            let known_dead = self
                .dead
                .get(&victim)
                .is_some_and(|d| d.offsets.contains(&off));
            if !known_dead {
                let bytes = fs.read_file(victim, off, rec_len, IoKind::Meta)?;
                let (key, value) = Self::decode_record(&bytes)?;
                entries.push(GcEntry {
                    key,
                    ptr: VlogPtr {
                        segment: victim,
                        offset: off,
                        len: rec_len,
                    },
                    value,
                });
            }
            off += rec_len;
        }
        let finished = off >= used;
        self.gc_cursor = if finished { None } else { Some((victim, off)) };
        Ok(Some(GcScan {
            segment: victim,
            entries,
            finished,
        }))
    }

    /// Frees a fully drained GC victim. The caller must have committed
    /// the pointer fixups durably first — after this call the band is
    /// back in the allocator and its bytes are gone.
    pub fn retire_segment(
        &mut self,
        fs: &mut FileStore,
        policy: &mut dyn PlacementPolicy,
        id: u64,
    ) -> Result<u64> {
        let Some(seg) = self.segments.get(&id) else {
            return Err(Error::InvalidArgument(format!(
                "retire of unknown value-log segment {id}"
            )));
        };
        if !seg.sealed {
            return Err(Error::InvalidArgument(format!(
                "refusing to retire active value-log segment {id}"
            )));
        }
        let reclaimed = seg.used;
        let relocated = std::mem::take(&mut self.gc_relocated_from_victim);
        policy.delete_file(fs, id)?;
        self.segments.remove(&id);
        self.dead.remove(&id);
        self.stats.segments_retired += 1;
        self.stats.reclaimed_bytes += reclaimed;
        self.dirty = true;
        let disk = fs.disk_mut();
        disk.obs_event(
            ObsLayer::ValueLog,
            ObsEventKind::VlogGcRelocate,
            id,
            relocated,
        );
        disk.obs_event(
            ObsLayer::ValueLog,
            ObsEventKind::VlogSegmentDrop,
            id,
            reclaimed,
        );
        disk.obs_mut()
            .counter_add(ObsLayer::ValueLog, "reclaimed_bytes", reclaimed);
        Ok(reclaimed)
    }

    // ----- scrub -----

    /// Verifies up to `budget_bytes` of record CRCs, resuming from the
    /// last step's position and wrapping at the directory's end. A CRC
    /// mismatch damages the whole segment (record framing cannot resync
    /// past a bad record); the caller salvages what is readable and
    /// quarantines the band.
    pub fn scrub_step(&mut self, fs: &mut FileStore, budget_bytes: u64) -> Result<VlogScrubStep> {
        let mut step = VlogScrubStep::default();
        if self.segments.is_empty() {
            return Ok(step);
        }
        let (mut seg_id, mut off) = match self.scrub_cursor.take() {
            Some((id, off)) if self.segments.contains_key(&id) => (id, off),
            _ => match self.segments.keys().next() {
                Some(id) => (*id, 0),
                None => return Ok(step),
            },
        };
        let mut visited = 0usize;
        while step.bytes_scanned < budget_bytes && visited < self.segments.len() {
            let used = self.segments[&seg_id].used;
            let mut damaged = false;
            while off < used && step.bytes_scanned < budget_bytes {
                let Ok(header) = fs.read_file(seg_id, off, RECORD_HEADER, IoKind::Meta) else {
                    damaged = true;
                    break;
                };
                let klen = u64::from(u32::from_le_bytes([
                    header[4], header[5], header[6], header[7],
                ]));
                let vlen = u64::from(u32::from_le_bytes([
                    header[8], header[9], header[10], header[11],
                ]));
                let rec_len = RECORD_HEADER + klen + vlen;
                if off + rec_len > used {
                    damaged = true;
                    break;
                }
                let ok = fs
                    .read_file(seg_id, off, rec_len, IoKind::Meta)
                    .ok()
                    .is_some_and(|bytes| Self::decode_record(&bytes).is_ok());
                if !ok {
                    damaged = true;
                    break;
                }
                step.records_ok += 1;
                step.bytes_scanned += rec_len;
                off += rec_len;
            }
            if damaged {
                step.damaged.push(seg_id);
            }
            if damaged || off >= used {
                // Advance to the next segment (wrapping) and stop after
                // one full lap.
                visited += 1;
                let next = self
                    .segments
                    .range((seg_id + 1)..)
                    .next()
                    .or_else(|| self.segments.iter().next())
                    .map(|(id, _)| *id);
                match next {
                    Some(id) => {
                        seg_id = id;
                        off = 0;
                    }
                    None => break,
                }
            }
        }
        self.scrub_cursor = Some((seg_id, off));
        Ok(step)
    }

    /// Returns the intact record prefix of a damaged segment — what can
    /// still be salvaged before the band is quarantined. Records past
    /// the first corrupt one are unreachable (framing lost) and their
    /// pointers will serve degraded.
    pub fn salvage_prefix(&self, fs: &mut FileStore, id: u64) -> Result<Vec<GcEntry>> {
        let Some(seg) = self.segments.get(&id) else {
            return Err(Error::InvalidArgument(format!(
                "salvage of unknown value-log segment {id}"
            )));
        };
        let used = seg.used;
        let mut out = Vec::new();
        let mut off = 0u64;
        while off < used {
            let Ok(header) = fs.read_file(id, off, RECORD_HEADER, IoKind::Meta) else {
                break;
            };
            let klen = u64::from(u32::from_le_bytes([
                header[4], header[5], header[6], header[7],
            ]));
            let vlen = u64::from(u32::from_le_bytes([
                header[8], header[9], header[10], header[11],
            ]));
            let rec_len = RECORD_HEADER + klen + vlen;
            if off + rec_len > used {
                break;
            }
            let Ok(bytes) = fs.read_file(id, off, rec_len, IoKind::Meta) else {
                break;
            };
            let Ok((key, value)) = Self::decode_record(&bytes) else {
                break;
            };
            out.push(GcEntry {
                key,
                ptr: VlogPtr {
                    segment: id,
                    offset: off,
                    len: rec_len,
                },
                value,
            });
            off += rec_len;
        }
        Ok(out)
    }

    /// Removes a damaged segment from service and fences its band so
    /// the allocator never hands it out again. Pointers that still
    /// reference it fail closed on read. Returns the fenced band size.
    pub fn quarantine_segment(
        &mut self,
        fs: &mut FileStore,
        policy: &mut dyn PlacementPolicy,
        id: u64,
    ) -> Result<u64> {
        let Some(seg) = self.segments.remove(&id) else {
            return Err(Error::InvalidArgument(format!(
                "quarantine of unknown value-log segment {id}"
            )));
        };
        for slot in &mut self.active {
            if *slot == Some(id) {
                *slot = None;
            }
        }
        // Return the extent through the policy (keeps its region
        // bookkeeping honest), then fence it out of the free pool so the
        // allocator never hands the bad band out again.
        policy.delete_file(fs, id)?;
        policy.quarantine_extent(fs, seg.ext);
        self.dead.remove(&id);
        self.stats.segments_retired += 1;
        self.stats.reclaimed_bytes += seg.used;
        self.dirty = true;
        fs.disk_mut().obs_event(
            ObsLayer::ValueLog,
            ObsEventKind::VlogSegmentDrop,
            id,
            seg.used,
        );
        Ok(seg.ext.len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsm_core::PerFilePolicy;
    use placement::Ext4Sim;
    use smr_sim::{Disk, Layout, TimeModel};

    const MB: u64 = 1 << 20;

    fn fixture() -> (FileStore, PerFilePolicy) {
        let cap = 256 * MB;
        let disk = Disk::new(
            cap,
            Layout::RawHmSmr { guard_bytes: MB },
            TimeModel::smr_st5000as0011(cap),
        );
        let fs = FileStore::new(disk, 16 * MB);
        let alloc = Ext4Sim::new(cap - 16 * MB, 64 * MB);
        (fs, PerFilePolicy::new(Box::new(alloc)))
    }

    fn small_params() -> VlogParams {
        VlogParams {
            segment_bytes: 4096,
            value_threshold: 64,
            ..VlogParams::default()
        }
    }

    #[test]
    fn pointer_encoding_roundtrip() {
        let ptr = VlogPtr {
            segment: VLOG_FILE_BASE + 3,
            offset: 12345,
            len: 678,
        };
        match decode_stored(&encode_pointer(ptr)).unwrap() {
            StoredValue::Pointer(p) => assert_eq!(p, ptr),
            other => panic!("expected pointer, got {other:?}"),
        }
        match decode_stored(&encode_inline(b"abc")).unwrap() {
            StoredValue::Inline(v) => assert_eq!(v, b"abc"),
            other => panic!("expected inline, got {other:?}"),
        }
        assert!(decode_stored(&[]).is_err());
        assert!(decode_stored(&[POINTER_TAG, 1, 2]).is_err());
    }

    #[test]
    fn append_read_roundtrip_and_key_check() {
        let (mut fs, mut policy) = fixture();
        let mut vl = ValueLog::new(small_params());
        let ptr = vl
            .append(&mut fs, &mut policy, b"key-1", &[7u8; 200])
            .unwrap();
        assert_eq!(vl.read(&mut fs, ptr, b"key-1").unwrap(), vec![7u8; 200]);
        // Reading under the wrong key fails closed.
        assert!(vl.read(&mut fs, ptr, b"key-2").is_err());
        assert!(vl.take_dirty());
        assert!(!vl.take_dirty());
    }

    #[test]
    fn segments_seal_and_roll_when_full() {
        let (mut fs, mut policy) = fixture();
        let mut vl = ValueLog::new(small_params());
        // 4096-byte segments, ~1012-byte records: the fifth append rolls.
        let mut ptrs = Vec::new();
        for i in 0..8u8 {
            let key = format!("cold-{i:04}");
            ptrs.push((
                key.clone(),
                vl.append(&mut fs, &mut policy, key.as_bytes(), &[i; 1000])
                    .unwrap(),
            ));
        }
        assert!(vl.segment_count() >= 2);
        for (i, (key, ptr)) in ptrs.iter().enumerate() {
            assert_eq!(
                vl.read(&mut fs, *ptr, key.as_bytes()).unwrap(),
                vec![i as u8; 1000]
            );
        }
    }

    #[test]
    fn hot_keys_separate_from_cold() {
        let (mut fs, mut policy) = fixture();
        let mut vl = ValueLog::new(small_params());
        // Update one key repeatedly: past the threshold it routes hot.
        let mut last_hot = None;
        for _ in 0..4 {
            last_hot = Some(
                vl.append(&mut fs, &mut policy, b"hot-key", &[1u8; 100])
                    .unwrap(),
            );
        }
        let cold = vl
            .append(&mut fs, &mut policy, b"cold-key-once", &[2u8; 100])
            .unwrap();
        assert_ne!(last_hot.unwrap().segment, cold.segment);
    }

    #[test]
    fn checkpoint_recover_roundtrip() {
        let (mut fs, mut policy) = fixture();
        let mut vl = ValueLog::new(small_params());
        let mut ptrs = Vec::new();
        for i in 0..6u8 {
            let key = format!("k{i}");
            ptrs.push((
                key.clone(),
                vl.append(&mut fs, &mut policy, key.as_bytes(), &[i; 900])
                    .unwrap(),
            ));
        }
        let blob = vl.checkpoint();
        let mut vl2 = ValueLog::new(small_params());
        let report = vl2.recover(&mut fs, &mut policy, Some(&blob)).unwrap();
        assert_eq!(report.segments_recovered, vl.segment_count());
        assert_eq!(report.orphan_segments_dropped, 0);
        assert_eq!(report.torn_tail_bytes, 0);
        for (i, (key, ptr)) in ptrs.iter().enumerate() {
            assert_eq!(
                vl2.read(&mut fs, *ptr, key.as_bytes()).unwrap(),
                vec![i as u8; 900]
            );
        }
        // Appends continue into the recovered active segment without
        // clobbering earlier records.
        let p = vl2
            .append(&mut fs, &mut policy, b"after", &[9u8; 100])
            .unwrap();
        assert_eq!(vl2.read(&mut fs, p, b"after").unwrap(), vec![9u8; 100]);
    }

    #[test]
    fn recovery_drops_orphan_segments() {
        let (mut fs, mut policy) = fixture();
        let mut vl = ValueLog::new(small_params());
        vl.append(&mut fs, &mut policy, b"a", &[1u8; 100]).unwrap();
        let blob = vl.checkpoint();
        // A segment allocated after the checkpoint is an orphan on
        // recovery from that checkpoint.
        for i in 0..8u8 {
            vl.append(&mut fs, &mut policy, format!("x{i}").as_bytes(), &[i; 1000])
                .unwrap();
        }
        assert!(vl.segment_count() > 1);
        let mut vl2 = ValueLog::new(small_params());
        let report = vl2.recover(&mut fs, &mut policy, Some(&blob)).unwrap();
        assert_eq!(report.segments_recovered, 1);
        assert!(report.orphan_segments_dropped >= 1);
        // Only the checkpointed segment file remains.
        let vlog_files = fs
            .file_extents()
            .into_iter()
            .filter(|(id, _)| *id >= VLOG_FILE_BASE)
            .count();
        assert_eq!(vlog_files, 1);
    }

    #[test]
    fn gc_scan_drain_and_retire() {
        let (mut fs, mut policy) = fixture();
        let mut vl = ValueLog::new(small_params());
        let mut ptrs = Vec::new();
        for i in 0..10u8 {
            let key = format!("gc-{i:03}");
            let ptr = vl
                .append(&mut fs, &mut policy, key.as_bytes(), &[i; 900])
                .unwrap();
            ptrs.push(ptr);
        }
        // Victim selection is garbage-driven: with no dead bytes noted
        // anywhere, there is nothing worth draining.
        assert!(vl.gc_candidate().is_none());
        // Mark the second record of the first segment dead (as the
        // store does when an overwrite supersedes a pointer).
        vl.note_dead(ptrs[1]);
        assert_eq!(vl.dead_bytes(ptrs[1].segment), ptrs[1].len);
        let victim = vl.gc_candidate().expect("a sealed segment with garbage");
        assert_eq!(victim, ptrs[1].segment);
        // Drain with a small budget: multiple steps.
        let mut seen = Vec::new();
        loop {
            let scan = vl.gc_scan(&mut fs, 1024).unwrap().expect("victim pending");
            assert_eq!(scan.segment, victim);
            seen.extend(scan.entries.into_iter().map(|e| e.key));
            if scan.finished {
                break;
            }
        }
        assert!(!seen.is_empty());
        // The known-dead record was skipped: no liveness work for it.
        assert!(!seen.contains(&b"gc-001".to_vec()));
        // Relocate one record, then retire: bytes land in stats and the
        // segment file is gone.
        vl.relocate(&mut fs, &mut policy, b"gc-000", &[0u8; 900])
            .unwrap();
        let reclaimed = vl.retire_segment(&mut fs, &mut policy, victim).unwrap();
        assert!(reclaimed > 0);
        assert!(!fs.has_file(victim));
        assert!(vl.stats().relocated_bytes > 0);
        assert_eq!(vl.stats().reclaimed_bytes, reclaimed);
        assert!(vl.retire_segment(&mut fs, &mut policy, victim).is_err());
    }

    #[test]
    fn scrub_flags_corrupt_segment_and_salvage_reads_prefix() {
        let (mut fs, mut policy) = fixture();
        let mut vl = ValueLog::new(small_params());
        let mut ptrs = Vec::new();
        for i in 0..3u8 {
            let key = format!("s{i}");
            ptrs.push(
                vl.append(&mut fs, &mut policy, key.as_bytes(), &[i; 300])
                    .unwrap(),
            );
        }
        // Clean scrub first.
        let step = vl.scrub_step(&mut fs, 1 << 20).unwrap();
        assert!(step.damaged.is_empty());
        assert_eq!(step.records_ok, 3);
        // Flip bytes inside the second record.
        let seg = ptrs[1].segment;
        let ext = fs.file_extent(seg).unwrap();
        fs.disk_mut()
            .faults_mut()
            .corrupt_extent(Extent::new(ext.offset + ptrs[1].offset + 8, 4));
        let mut damaged = Vec::new();
        for _ in 0..4 {
            damaged.extend(vl.scrub_step(&mut fs, 1 << 20).unwrap().damaged);
        }
        assert!(damaged.contains(&seg));
        // Salvage recovers only the first record.
        let salvage = vl.salvage_prefix(&mut fs, seg).unwrap();
        assert_eq!(salvage.len(), 1);
        assert_eq!(salvage[0].key, b"s0");
        // Quarantine fences the band and fails later reads closed.
        vl.quarantine_segment(&mut fs, &mut policy, seg).unwrap();
        assert!(vl.read(&mut fs, ptrs[1], b"s1").is_err());
        assert!(!fs.has_file(seg));
    }
}
