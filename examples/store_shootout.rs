//! Store shootout: the paper's four systems side by side on one random
//! load — throughput, write amplification, compaction profile and disk
//! layout in a single table (a condensed Fig. 8 + Fig. 10 + Fig. 12).
//!
//! Run with `cargo run --release --example store_shootout`.

use sealdb::{StoreConfig, StoreKind};
use workloads::{fill_random, RecordGenerator};

fn main() -> lsm_core::Result<()> {
    let records = 40_000u64;
    let gen = RecordGenerator::new(16, 1024, 7);

    println!(
        "{:<14}{:>10}{:>8}{:>8}{:>9}{:>7}{:>12}{:>11}",
        "store", "load op/s", "WA", "AWA", "MWA", "comps", "avg comp MB", "span MiB"
    );
    for kind in StoreKind::ALL {
        let mut store = StoreConfig::new(kind, 256 << 10, 512 << 20).build()?;
        let res = fill_random(&mut store, &gen, records, 42)?;
        let snap = store.snapshot();
        let real = snap.real_compactions().count();
        println!(
            "{:<14}{:>10.0}{:>8.2}{:>8.2}{:>9.2}{:>7}{:>12.2}{:>11.1}",
            store.name(),
            res.ops_per_sec(),
            snap.io.wa(),
            snap.io.awa(),
            snap.io.mwa(),
            real,
            snap.avg_compaction_bytes() / (1u64 << 20) as f64,
            snap.high_water as f64 / (1u64 << 20) as f64,
        );
    }
    println!("\npaper: SEALDB loads 3.42x faster than LevelDB and 1.67x faster than SMRDB;");
    println!("LevelDB multiplies WA by the band RMW factor (MWA ~52x), SEALDB eliminates AWA.");
    Ok(())
}
