//! SMR mechanics tour: drive the simulated drive and the dynamic-band
//! allocator directly, walking through the paper's Fig. 7 operation
//! sequence (append / delete / insert-with-guard / split / coalesce) and
//! demonstrating why the fixed-band baseline amplifies writes.
//!
//! Run with `cargo run --release --example smr_inspect`.

use placement::{Allocator, DynamicBandAlloc};
use smr_sim::{Disk, DiskError, Extent, IoKind, Layout, TimeModel};

const MB: u64 = 1 << 20;
const SST: u64 = 4 * MB; // one SSTable, the paper's guard size

fn main() {
    fixed_band_amplification();
    raw_smr_guard_contract();
    dynamic_band_figure7();
}

/// A conventional SMR drive read-modify-writes the damaged band suffix
/// on any non-append write — the paper's AWA source (§II-C2).
fn fixed_band_amplification() {
    println!("== fixed-band SMR: auxiliary write amplification ==");
    let cap = 1024 * MB;
    let mut disk = Disk::new(
        cap,
        Layout::FixedBand { band_size: 40 * MB },
        TimeModel::smr_st5000as0011(cap),
    );
    // Fill a band sequentially: no penalty.
    let chunk = vec![7u8; (4 * MB) as usize];
    for i in 0..10 {
        disk.write(Extent::new(i * 4 * MB, 4 * MB), &chunk, IoKind::Flush)
            .unwrap();
    }
    let before = disk.stats().kind(IoKind::Flush);
    println!(
        "  sequential fill: {} MiB logical -> {} MiB on the platter (no amplification)",
        before.logical_written >> 20,
        before.device_written >> 20
    );
    // Rewrite 4 MiB in the middle: the drive must rewrite the suffix.
    disk.write(Extent::new(8 * MB, 4 * MB), &chunk, IoKind::CompactionWrite)
        .unwrap();
    let c = disk.stats().kind(IoKind::CompactionWrite);
    println!(
        "  4 MiB rewrite at offset 8 MiB: device read {} MiB and wrote {} MiB (RMW of the shingled suffix)",
        c.device_read >> 20,
        c.device_written >> 20
    );
    println!("  band RMW events: {}\n", disk.stats().band_rmw_events);
}

/// The raw HM-SMR drive faults instead of silently destroying data when
/// the host violates the Caveat-Scriptor contract.
fn raw_smr_guard_contract() {
    println!("== raw HM-SMR: the guard contract ==");
    let cap = 1024 * MB;
    let mut disk = Disk::new(
        cap,
        Layout::RawHmSmr { guard_bytes: SST },
        TimeModel::smr_st5000as0011(cap),
    );
    let block = vec![1u8; (4 * MB) as usize];
    disk.write(Extent::new(100 * MB, 4 * MB), &block, IoKind::Raw)
        .unwrap();
    // Writing too close *before* valid data damages it in the shingle
    // direction: the simulator refuses.
    let small = vec![2u8; MB as usize];
    match disk.write(Extent::new(97 * MB, MB), &small, IoKind::Raw) {
        Err(DiskError::GuardViolation { ext, damaged }) => {
            println!("  write {ext:?} rejected: would damage valid data at {damaged:?}");
        }
        other => panic!("expected a guard violation, got {other:?}"),
    }
    // One guard region of clearance makes it legal.
    disk.write(Extent::new(95 * MB, MB), &small, IoKind::Raw)
        .unwrap();
    println!("  write at 95 MiB accepted: 4 MiB guard before the valid region\n");
}

/// The paper's Fig. 7 walkthrough on the dynamic-band allocator.
fn dynamic_band_figure7() {
    println!("== dynamic bands: the Fig. 7 operation sequence ==");
    let mut alloc = DynamicBandAlloc::new(1024 * MB, SST, SST);
    let print_state = |alloc: &DynamicBandAlloc, step: &str| {
        let bands: Vec<String> = alloc
            .bands()
            .iter()
            .map(|(e, n)| format!("[{}..{} MiB: {} sets]", e.offset >> 20, e.end() >> 20, n))
            .collect();
        let free: Vec<String> = alloc
            .free_regions()
            .iter()
            .map(|e| format!("[{}..{} MiB]", e.offset >> 20, e.end() >> 20))
            .collect();
        println!("  {step}");
        println!("    bands: {}", bands.join(" "));
        println!(
            "    free : {}",
            if free.is_empty() {
                "-".into()
            } else {
                free.join(" ")
            }
        );
    };
    // (1) Three sets appended.
    let set1 = alloc.allocate(24 * MB).unwrap();
    let set2 = alloc.allocate(20 * MB).unwrap();
    let set3 = alloc.allocate(16 * MB).unwrap();
    print_state(&alloc, "(1) sets 1-3 appended");
    // (2) set 1 compacts away; its replacement is appended.
    alloc.free(set1);
    let _set1p = alloc.allocate(28 * MB).unwrap();
    print_state(
        &alloc,
        "(2) set 1 deleted, set 1' (28 MiB) appended (24 MiB hole < 28 + guard)",
    );
    // (3) set 4 (12 MiB) inserts into the hole: Eq. 1 holds (12+4 <= 24).
    let _set4 = alloc.allocate(12 * MB).unwrap();
    print_state(
        &alloc,
        "(3) set 4 (12 MiB) inserted: split into data | guard | remainder",
    );
    // (4) set 5 (4 MiB) exactly fits the remainder.
    let _set5 = alloc.allocate(4 * MB).unwrap();
    print_state(
        &alloc,
        "(4) set 5 (4 MiB) fits the 8 MiB remainder exactly (4 data + 4 guard)",
    );
    // (5) deleting sets 2 and 3 coalesces their space.
    alloc.free(set3);
    alloc.free(set2);
    print_state(&alloc, "(5) sets 2 and 3 deleted: holes coalesce");
    println!(
        "\n  frontier {} MiB, free pool {} MiB, zero auxiliary write amplification by construction",
        alloc.frontier() >> 20,
        alloc.free_pool_bytes() >> 20
    );
}
