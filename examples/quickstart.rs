//! Quickstart: open a SEALDB store on a simulated host-managed SMR
//! drive, write, read, scan, and inspect the amplification accounting.
//!
//! Run with `cargo run --release --example quickstart`.

use sealdb::{StoreConfig, StoreKind};

fn main() -> lsm_core::Result<()> {
    // A SEALDB store on a 1 GiB raw HM-SMR drive, 256 KiB SSTables
    // (1/16 of the paper's 4 MiB; every ratio — AF=10, band = 10 tables,
    // guard = 1 table — is preserved).
    let cfg = StoreConfig::new(StoreKind::SealDb, 256 << 10, 1 << 30);
    let mut store = cfg.build()?;

    // Basic operations.
    store.put(b"espresso", b"25ml, 9 bar")?;
    store.put(b"cappuccino", b"espresso + steamed milk")?;
    store.put(b"ristretto", b"15ml, tighter shot")?;
    assert_eq!(
        store.get(b"espresso")?.as_deref(),
        Some(b"25ml, 9 bar".as_ref())
    );
    store.delete(b"ristretto")?;
    assert_eq!(store.get(b"ristretto")?, None);

    // Write enough to force flushes and compactions through the LSM tree.
    println!("loading 20k records...");
    for i in 0..20_000u64 {
        let key = format!("key{:012}", (i * 2654435761) % 20_000);
        let value = vec![(i % 251) as u8; 512];
        store.put(key.as_bytes(), &value)?;
    }
    store.flush()?;

    // Range scan.
    let range = store.scan(b"key000000000100", 5)?;
    println!("scan from key...100:");
    for (k, v) in &range {
        println!("  {} ({} bytes)", String::from_utf8_lossy(k), v.len());
    }

    // The paper's accounting: WA, AWA, MWA — and the set statistics.
    let snap = store.snapshot();
    println!("\nsimulated time: {:.2} s", snap.clock_ns as f64 / 1e9);
    println!(
        "write amplification: WA {:.2}, AWA {:.2} (dynamic bands never amplify), MWA {:.2}",
        snap.io.wa(),
        snap.io.awa(),
        snap.io.mwa()
    );
    println!(
        "compactions: {} ({} trivial moves)",
        snap.compactions.len(),
        snap.compactions.iter().filter(|c| c.trivial_move).count()
    );
    if let Some(sets) = snap.set_stats {
        println!(
            "sets: {} created, {} live, avg {:.2} SSTables / {:.2} KiB per compaction set",
            sets.sets_created,
            sets.sets_live,
            sets.avg_set_files(),
            sets.avg_set_bytes() / 1024.0
        );
    }
    println!(
        "dynamic bands: {} spanning {:.1} MiB of banded space",
        snap.bands.len(),
        snap.high_water as f64 / (1 << 20) as f64
    );
    Ok(())
}
