//! YCSB tour: load a small database into each of the paper's stores and
//! run the six core workloads, printing a Fig. 9-style table.
//!
//! Run with `cargo run --release --example ycsb_tour`.

use sealdb::{StoreConfig, StoreKind};
use workloads::{fill_random, run_ycsb, RecordGenerator, WorkloadSpec};

fn main() -> lsm_core::Result<()> {
    let records = 30_000u64;
    let ops = 2_000u64;
    let gen = RecordGenerator::new(16, 1024, 7);

    println!(
        "{:<14}{}",
        "store",
        WorkloadSpec::all()
            .iter()
            .map(|w| format!("{:>10}", format!("YCSB-{}", w.name)))
            .collect::<String>()
    );

    let mut baselines: Vec<f64> = Vec::new();
    for kind in StoreKind::MAIN {
        let mut store = StoreConfig::new(kind, 256 << 10, 2 << 30).build()?;
        fill_random(&mut store, &gen, records, 42)?;
        let mut row = format!("{:<14}", store.name());
        for (i, spec) in WorkloadSpec::all().into_iter().enumerate() {
            let res = run_ycsb(&mut store, &gen, &spec, records, ops, 9)?;
            assert_eq!(res.misses, 0, "workload {} lost keys", spec.name);
            let ops_s = res.ops_per_sec();
            if kind == StoreKind::LevelDb {
                baselines.push(ops_s);
                row.push_str(&format!("{ops_s:>10.0}"));
            } else {
                row.push_str(&format!("{:>9.2}x", ops_s / baselines[i]));
            }
        }
        println!("{row}");
    }
    println!("\n(LevelDB row: ops per simulated second; other rows: speedup vs LevelDB)");
    println!("paper Fig. 9: SEALDB leads every workload; gains are largest on write-heavy mixes");
    Ok(())
}
