//! Smoke tests for the figure harness: every experiment runs at the CI
//! scale and its key paper-shape assertions hold.

use bench::{experiments, BenchScale};

fn tiny() -> BenchScale {
    BenchScale::tiny()
}

#[test]
fn fig02_traces_scattered_compactions() {
    let r = experiments::fig02(&tiny()).unwrap();
    assert_eq!(r.csvs.len(), 1);
    let rows = r.csvs[0].content.lines().count();
    assert!(rows > 10, "expected traced writes, got {rows} rows");
    // At least one summary line mentions compactions.
    assert!(r.lines.iter().any(|l| l.contains("compactions traced")));
}

#[test]
fn fig03_mwa_grows_with_band_size() {
    let r = experiments::fig03(&tiny()).unwrap();
    let csv = &r.csvs[0].content;
    let mwa: Vec<f64> = csv
        .lines()
        .skip(1)
        .map(|l| l.split(',').nth(6).unwrap().parse().unwrap())
        .collect();
    assert_eq!(mwa.len(), 5);
    // The paper's Fig. 3(b): MWA grows with band size. Allow local noise
    // but require the ends to be ordered.
    assert!(
        mwa.last().unwrap() > mwa.first().unwrap(),
        "MWA should grow with band size: {mwa:?}"
    );
    // WA itself is band-independent (same engine): all values equal.
    let wa: Vec<f64> = csv
        .lines()
        .skip(1)
        .map(|l| l.split(',').nth(4).unwrap().parse().unwrap())
        .collect();
    for w in &wa {
        assert!((w - wa[0]).abs() < 1e-6, "WA must not depend on band size");
    }
}

#[test]
fn table2_matches_device_model_targets() {
    let r = experiments::table2(&tiny()).unwrap();
    let csv = &r.csvs[0].content;
    let get = |device: &str, metric: &str| -> f64 {
        csv.lines()
            .find(|l| l.starts_with(&format!("{device},{metric},")))
            .and_then(|l| l.split(',').nth(2))
            .unwrap()
            .parse()
            .unwrap()
    };
    // Sequential rates within 10% of Table II.
    assert!((get("HDD", "seq_read") - 169.0).abs() < 17.0);
    assert!((get("HDD", "seq_write") - 155.0).abs() < 16.0);
    assert!((get("SMR", "seq_read") - 165.0).abs() < 17.0);
    // Random reads in the tens of IOPS.
    assert!((40.0..110.0).contains(&get("HDD", "rand_read_4k")));
    // SMR random writes degrade on aged (written) bands — the paper's
    // 5-140 IOPS range. The absolute floor scales with band size, so the
    // smoke test asserts the relative collapse.
    assert!(get("SMR", "rand_write_4k_aged") < get("SMR", "rand_write_4k") / 2.0);
    assert!(get("SMR", "rand_write_4k_aged") < get("HDD", "rand_write_4k"));
}

#[test]
fn fig08_sealdb_beats_leveldb_on_random_load() {
    let r = experiments::fig08(&tiny()).unwrap();
    let csv = &r.csvs[0].content;
    let norm = |store: &str, phase: &str| -> f64 {
        csv.lines()
            .find(|l| l.starts_with(&format!("{store},{phase},")))
            .and_then(|l| l.split(',').nth(4))
            .unwrap()
            .parse()
            .unwrap()
    };
    assert!(norm("SEALDB", "fillrandom") > 1.5, "paper: 3.42x");
    assert!(norm("SEALDB", "fillseq") > 1.0, "paper: ~1.6x");
    assert!(norm("SEALDB", "readseq") >= 1.0, "paper: 3.96x");
}

#[test]
fn fig12_sealdb_eliminates_awa() {
    let r = experiments::fig12(&tiny()).unwrap();
    let csv = &r.csvs[0].content;
    let row = |store: &str| -> Vec<f64> {
        csv.lines()
            .find(|l| l.starts_with(store))
            .unwrap()
            .split(',')
            .skip(1)
            .map(|v| v.parse().unwrap())
            .collect()
    };
    let leveldb = row("LevelDB");
    let sealdb = row("SEALDB");
    let smrdb = row("SMRDB");
    // AWA: LevelDB amplified, SEALDB and SMRDB not.
    assert!(leveldb[1] > 1.5, "LevelDB AWA {}", leveldb[1]);
    assert!((sealdb[1] - 1.0).abs() < 1e-6, "SEALDB AWA {}", sealdb[1]);
    assert!(smrdb[1] < 1.1, "SMRDB AWA {}", smrdb[1]);
    // MWA: SEALDB well below LevelDB.
    assert!(sealdb[2] < leveldb[2] / 2.0);
    // WA: sets do not change the LSM-tree's own amplification much.
    assert!((sealdb[0] - leveldb[0]).abs() / leveldb[0] < 0.35);
}

#[test]
fn fig11_sets_are_contiguous() {
    let r = experiments::fig11(&tiny()).unwrap();
    let line = r
        .lines
        .iter()
        .find(|l| l.contains("contiguous region"))
        .expect("contiguity line");
    // Every compaction writes one contiguous region.
    assert!(line.contains("(100%)"), "{line}");
}

#[test]
fn fig13_reports_fragments() {
    let r = experiments::fig13(&tiny()).unwrap();
    assert!(r.lines.iter().any(|l| l.contains("fragments:")));
    assert!(r.csvs[0].content.lines().count() > 1);
}

#[test]
fn fig14_sets_help_but_not_sequential_writes() {
    let r = experiments::fig14(&tiny()).unwrap();
    let csv = &r.csvs[0].content;
    let norm = |store: &str, phase: &str| -> f64 {
        csv.lines()
            .find(|l| l.starts_with(&format!("{store},{phase},")))
            .and_then(|l| l.split(',').nth(4))
            .unwrap()
            .parse()
            .unwrap()
    };
    // The paper's Fig. 14: sets improve random writes, but sequential
    // write performance "is only improved by dynamic band".
    assert!(norm("LevelDB+sets", "fillrandom") > 1.1);
    assert!((norm("LevelDB+sets", "fillseq") - 1.0).abs() < 0.15);
    assert!(norm("SEALDB", "fillseq") > norm("LevelDB+sets", "fillseq") + 0.2);
}
