//! Cross-crate determinism contract for the serving front-end: the
//! `seal-bench serve` sweep rides the simulated clock only, so two runs
//! with the same seed must serialize byte-identical `BENCH_pr3.json`
//! artifacts, and a different seed must actually change the measured
//! curve (no hidden constant output).

use bench::{serve_run, BenchScale};

/// A sweep small enough for a debug-mode double run: the disk must
/// still clear the 16 MiB log-zone floor with room for the deferred
/// level-0 buildup the serving phase provokes.
fn small_scale() -> BenchScale {
    let mut s = BenchScale::tiny();
    s.load_bytes = 4 << 20;
    s.capacity_ratio = 12;
    s.ycsb_ops = 300;
    s
}

#[test]
fn same_seed_double_run_is_byte_identical() {
    let first = serve_run::serve_sweep(&small_scale()).expect("first sweep");
    let second = serve_run::serve_sweep(&small_scale()).expect("second sweep");
    assert_eq!(
        first, second,
        "same-seed serve sweeps must serialize byte-identically"
    );
    let problems = serve_run::check_serve_json(&first);
    assert!(problems.is_empty(), "artifact invalid: {problems:?}");
}

#[test]
fn seed_changes_the_measured_curve() {
    let base = serve_run::serve_sweep(&small_scale()).expect("base sweep");
    let mut reseeded = small_scale();
    reseeded.seed ^= 0xBAD5EED;
    let other = serve_run::serve_sweep(&reseeded).expect("reseeded sweep");
    assert!(serve_run::check_serve_json(&other).is_empty());
    assert_ne!(base, other, "a different seed must change the artifact");
}
