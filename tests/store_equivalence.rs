//! Cross-store correctness: all four systems are the *same database*
//! with different placement — so any operation sequence must produce
//! identical observable results on every store, and must agree with an
//! in-memory model (`BTreeMap`).

use proptest::prelude::*;
use sealdb::{StoreConfig, StoreKind};
use std::collections::BTreeMap;

#[derive(Clone, Debug)]
enum Op {
    Put(u16, u8),
    Delete(u16),
    Get(u16),
    Scan(u16, u8),
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            4 => (0..400u16, any::<u8>()).prop_map(|(k, v)| Op::Put(k, v)),
            1 => (0..400u16).prop_map(Op::Delete),
            2 => (0..400u16).prop_map(Op::Get),
            1 => (0..400u16, 1..20u8).prop_map(|(k, n)| Op::Scan(k, n)),
        ],
        1..200,
    )
}

fn key(k: u16) -> Vec<u8> {
    format!("user{k:08}").into_bytes()
}

fn value(k: u16, v: u8) -> Vec<u8> {
    let mut out = vec![v; 120];
    out[..2].copy_from_slice(&k.to_le_bytes());
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn all_stores_agree_with_model(ops in ops()) {
        // Tiny tables force flushes and compactions inside the test.
        let mut stores: Vec<_> = StoreKind::ALL
            .iter()
            .map(|&kind| {
                StoreConfig::new(kind, 8 << 10, 256 << 20).build().expect("build")
            })
            .collect();
        let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
        for op in &ops {
            match op {
                Op::Put(k, v) => {
                    let (kb, vb) = (key(*k), value(*k, *v));
                    for s in &mut stores {
                        s.put(&kb, &vb).expect("put");
                    }
                    model.insert(kb, vb);
                }
                Op::Delete(k) => {
                    let kb = key(*k);
                    for s in &mut stores {
                        s.delete(&kb).expect("delete");
                    }
                    model.remove(&kb);
                }
                Op::Get(k) => {
                    let kb = key(*k);
                    let expected = model.get(&kb).cloned();
                    for s in &mut stores {
                        let got = s.get(&kb).expect("get");
                        prop_assert_eq!(&got, &expected, "{} get mismatch", s.name());
                    }
                }
                Op::Scan(k, n) => {
                    let kb = key(*k);
                    let expected: Vec<(Vec<u8>, Vec<u8>)> = model
                        .range(kb.clone()..)
                        .take(*n as usize)
                        .map(|(a, b)| (a.clone(), b.clone()))
                        .collect();
                    for s in &mut stores {
                        let got = s.scan(&kb, *n as usize).expect("scan");
                        prop_assert_eq!(&got, &expected, "{} scan mismatch", s.name());
                    }
                }
            }
        }
        // Final full sweep after quiescing compactions.
        for s in &mut stores {
            s.flush().expect("flush");
            let all = s.scan(b"", usize::MAX.min(1 << 20)).expect("full scan");
            let expected: Vec<(Vec<u8>, Vec<u8>)> =
                model.iter().map(|(a, b)| (a.clone(), b.clone())).collect();
            prop_assert_eq!(&all, &expected, "{} final state mismatch", s.name());
        }
    }
}
