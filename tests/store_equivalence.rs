//! Cross-store correctness: all four systems are the *same database*
//! with different placement — so any operation sequence must produce
//! identical observable results on every store, and must agree with an
//! in-memory model (`BTreeMap`). Seeded xorshift generation instead of a
//! property-testing framework: no external crates, reproducible cases.

use lsm_core::util::rng::XorShift64;
use sealdb::{StoreConfig, StoreKind};
use std::collections::BTreeMap;

#[derive(Clone, Debug)]
enum Op {
    Put(u16, u8),
    Delete(u16),
    Get(u16),
    Scan(u16, u8),
}

fn random_ops(rng: &mut XorShift64) -> Vec<Op> {
    let count = 1 + rng.next_below(199) as usize;
    (0..count)
        .map(|_| {
            let k = rng.next_below(400) as u16;
            match rng.next_below(8) {
                0..=3 => Op::Put(k, rng.next_u64() as u8),
                4 => Op::Delete(k),
                5 | 6 => Op::Get(k),
                _ => Op::Scan(k, 1 + rng.next_below(19) as u8),
            }
        })
        .collect()
}

fn key(k: u16) -> Vec<u8> {
    format!("user{k:08}").into_bytes()
}

fn value(k: u16, v: u8) -> Vec<u8> {
    let mut out = vec![v; 120];
    out[..2].copy_from_slice(&k.to_le_bytes());
    out
}

#[test]
fn all_stores_agree_with_model() {
    let mut rng = XorShift64::new(0x51035);
    for _case in 0..24 {
        let ops = random_ops(&mut rng);
        // Tiny tables force flushes and compactions inside the test.
        let mut stores: Vec<_> = StoreKind::ALL
            .iter()
            .map(|&kind| {
                StoreConfig::new(kind, 8 << 10, 256 << 20)
                    .build()
                    .expect("build")
            })
            .collect();
        let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
        for op in &ops {
            match op {
                Op::Put(k, v) => {
                    let (kb, vb) = (key(*k), value(*k, *v));
                    for s in &mut stores {
                        s.put(&kb, &vb).expect("put");
                    }
                    model.insert(kb, vb);
                }
                Op::Delete(k) => {
                    let kb = key(*k);
                    for s in &mut stores {
                        s.delete(&kb).expect("delete");
                    }
                    model.remove(&kb);
                }
                Op::Get(k) => {
                    let kb = key(*k);
                    let expected = model.get(&kb).cloned();
                    for s in &mut stores {
                        let got = s.get(&kb).expect("get");
                        assert_eq!(&got, &expected, "{} get mismatch", s.name());
                    }
                }
                Op::Scan(k, n) => {
                    let kb = key(*k);
                    let expected: Vec<(Vec<u8>, Vec<u8>)> = model
                        .range(kb.clone()..)
                        .take(*n as usize)
                        .map(|(a, b)| (a.clone(), b.clone()))
                        .collect();
                    for s in &mut stores {
                        let got = s.scan(&kb, *n as usize).expect("scan");
                        assert_eq!(&got, &expected, "{} scan mismatch", s.name());
                    }
                }
            }
        }
        // Final full sweep after quiescing compactions.
        for s in &mut stores {
            s.flush().expect("flush");
            let all = s.scan(b"", 1 << 20).expect("full scan");
            let expected: Vec<(Vec<u8>, Vec<u8>)> =
                model.iter().map(|(a, b)| (a.clone(), b.clone())).collect();
            assert_eq!(&all, &expected, "{} final state mismatch", s.name());
        }
    }
}
