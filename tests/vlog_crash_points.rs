//! Value-log crash-point sweeps: seeded kills during vlog appends,
//! during GC relocation, and on the boundary between pointer fixup and
//! segment recycle. The invariants: no acked (flushed) value is ever
//! lost, no surviving key ever reads back garbage, and no stale pointer
//! survives a reopen — a GC crash must never change what any key reads,
//! and post-recovery GC (which re-verifies liveness through the LSM,
//! since the in-memory dead accounting died with the process) must not
//! resurrect overwritten values.

use sealdb::{Store, StoreConfig, StoreKind, VlogParams};
use workloads::RecordGenerator;

const KEYS: u64 = 600;

fn vlog_store(seed: u64) -> Store {
    let mut cfg = StoreConfig::new(StoreKind::SealDb, 16 << 10, 512 << 20).with_vlog(VlogParams {
        segment_bytes: 32 << 10,
        value_threshold: 64,
        ..VlogParams::default()
    });
    cfg.seed = seed;
    cfg.build().unwrap()
}

/// Old (preload) and new (update) generators: distinguishable values
/// for the same key space, both above the separation threshold.
fn gens() -> (RecordGenerator, RecordGenerator) {
    (
        RecordGenerator::new(16, 512, 21),
        RecordGenerator::new(16, 512, 22),
    )
}

/// Preload every key at v1 and overwrite the even half at v2, flushing
/// both phases. Leaves every preload segment half live, half dead, so a
/// GC pass must relocate the live records and fix up their pointers
/// before it can recycle anything.
fn load_mixed(store: &mut Store, old: &RecordGenerator, new: &RecordGenerator) {
    for i in 0..KEYS {
        store.put(&old.key(i), &old.value(i)).unwrap();
    }
    store.flush().unwrap();
    for i in (0..KEYS).step_by(2) {
        store.put(&new.key(i), &new.value(i)).unwrap();
    }
    store.flush().unwrap();
}

/// The durable expectation after `load_mixed`: even keys read v2, odd
/// keys read v1 — and nothing a GC pass or crash does may change that.
fn assert_mixed(
    store: &mut Store,
    old: &RecordGenerator,
    new: &RecordGenerator,
    stride: usize,
    ctx: &str,
) {
    for i in (0..KEYS).step_by(stride) {
        let want = if i % 2 == 0 {
            new.value(i)
        } else {
            old.value(i)
        };
        assert_eq!(
            store.get(&old.key(i)).unwrap(),
            Some(want),
            "{ctx}: key {i} lost or stale"
        );
    }
}

fn drain_gc(store: &mut Store) {
    let mut steps = 0;
    while store.vlog_gc_pending() && steps < 10_000 {
        store.vlog_gc_step(32 << 10).unwrap();
        steps += 1;
    }
}

/// Torn-write sweep through the append path: the tear lands on vlog
/// record writes, WAL pointer commits, or the segment allocations in
/// between, depending on the arming point. The durable prefix must
/// survive byte-exact and every surviving churn key must read one of
/// its two exact values — a pointer into a torn record must never
/// surface garbage.
#[test]
fn torn_vlog_append_sweep_recovers_exact_values() {
    const POINTS: [u64; 8] = [0, 1, 3, 7, 19, 47, 113, 251];
    for (pt, &tear_after) in POINTS.iter().enumerate() {
        let mut store = vlog_store(0xB10C + pt as u64);
        let (old, new) = gens();
        for i in 0..KEYS {
            store.put(&old.key(i), &old.value(i)).unwrap();
        }
        store.flush().unwrap();

        store
            .db
            .ctx()
            .lock()
            .fs
            .disk_mut()
            .faults_mut()
            .tear_write_after(tear_after);
        for i in 0..KEYS {
            if store.put(&new.key(i), &new.value(i)).is_err() {
                break;
            }
        }
        store
            .db
            .ctx()
            .lock()
            .fs
            .disk_mut()
            .faults_mut()
            .disarm_torn_writes();
        let mut store = store.reopen().unwrap();

        for i in 0..KEYS {
            let got = store.get(&old.key(i)).unwrap();
            let ok = got == Some(old.value(i)) || got == Some(new.value(i));
            assert!(
                ok,
                "point {pt} (tear after {tear_after}): key {i} reads neither its \
                 durable nor its updated value"
            );
        }

        // The recovered store takes traffic and a GC lap without losing
        // anything: the churn re-creates garbage the post-crash GC (now
        // on the slow, LSM-verified path) must collect safely.
        for i in 0..KEYS / 2 {
            store.put(&new.key(i), &new.value(i)).unwrap();
        }
        drain_gc(&mut store);
        for i in 0..KEYS / 2 {
            assert_eq!(
                store.get(&new.key(i)).unwrap(),
                Some(new.value(i)),
                "point {pt}: key {i} wrong after post-recovery churn + GC"
            );
        }
    }
}

/// Power-cut sweep across a full GC drain over half-dead segments: the
/// answers are fully durable before GC starts, so *no* crash image
/// taken during relocation, pointer fixup, or segment recycle may
/// change what any key reads. After each restore, fresh churn plus a
/// second drain exercises the post-recovery GC path, which must
/// re-verify liveness rather than trust pre-crash accounting.
#[test]
fn power_cut_during_gc_never_changes_answers() {
    const MIN_IMAGES: usize = 12;
    let mut store = vlog_store(0x6C0D);
    let (old, new) = gens();
    load_mixed(&mut store, &old, &new);
    assert!(
        store.vlog_gc_pending(),
        "overwriting half the key space must leave GC work"
    );

    store
        .db
        .ctx()
        .lock()
        .fs
        .disk_mut()
        .faults_mut()
        .snapshot_every(3);
    drain_gc(&mut store);
    let stats = store.vlog.as_ref().unwrap().stats();
    assert!(
        stats.segments_retired > 0 && stats.relocated_bytes > 0,
        "the drain must relocate live records and recycle segments, got {stats:?}"
    );
    let images = {
        let mut guard = store.db.ctx().lock();
        guard.fs.disk_mut().faults_mut().disable_snapshots();
        guard.fs.take_crash_images()
    };
    assert!(
        images.len() >= MIN_IMAGES,
        "expected a rich GC image set, got {}",
        images.len()
    );

    let stride = (images.len() / MIN_IMAGES).max(1);
    let mut tested = 0usize;
    for img in images.iter().step_by(stride) {
        store = store.restore_crash_image(img).unwrap();
        tested += 1;
        assert_mixed(
            &mut store,
            &old,
            &new,
            7,
            &format!("cut at write {}", img.write_index()),
        );
        // Fresh churn so post-recovery GC has garbage to chase, then a
        // full drain on the LSM-verified path: answers must hold.
        for i in (1..KEYS).step_by(6) {
            store.put(&new.key(i), &new.value(i)).unwrap();
        }
        drain_gc(&mut store);
        for i in (0..KEYS).step_by(3) {
            let want = if i % 6 == 1 || i % 2 == 0 {
                new.value(i)
            } else {
                old.value(i)
            };
            assert_eq!(
                store.get(&old.key(i)).unwrap(),
                Some(want),
                "cut at write {}: post-recovery GC resurrected or lost key {i}",
                img.write_index()
            );
        }
        store.put(b"post-cut", b"alive").unwrap();
        assert_eq!(store.get(b"post-cut").unwrap(), Some(b"alive".to_vec()));
    }
    assert!(tested >= MIN_IMAGES, "swept only {tested} GC crash points");
}

/// Pin the fixup/recycle boundary specifically: snapshot every single
/// disk write while GC retires its first victim, so images bracket the
/// relocation appends, the pointer-fixup batch, and the segment delete
/// individually. Each restore must preserve every answer — if
/// retirement could outrun the fixups' durability, some pointer would
/// dangle into a recycled band and the read would fail or go stale.
#[test]
fn fixup_to_recycle_boundary_is_crash_safe() {
    let mut store = vlog_store(0xF1C5);
    let (old, new) = gens();
    load_mixed(&mut store, &old, &new);
    assert!(store.vlog_gc_pending());

    store
        .db
        .ctx()
        .lock()
        .fs
        .disk_mut()
        .faults_mut()
        .snapshot_every(1);
    // Step until exactly one victim has been recycled: scan, relocate,
    // fix up, retire.
    let retired_before = store.vlog.as_ref().unwrap().stats().segments_retired;
    let mut steps = 0;
    while store.vlog.as_ref().unwrap().stats().segments_retired == retired_before
        && store.vlog_gc_pending()
        && steps < 1000
    {
        store.vlog_gc_step(64 << 10).unwrap();
        steps += 1;
    }
    assert!(
        store.vlog.as_ref().unwrap().stats().segments_retired > retired_before,
        "GC never recycled a victim in {steps} steps"
    );
    let images = {
        let mut guard = store.db.ctx().lock();
        guard.fs.disk_mut().faults_mut().disable_snapshots();
        guard.fs.take_crash_images()
    };
    assert!(
        images.len() >= 3,
        "retiring a half-live victim must issue several writes, saw {} images",
        images.len()
    );

    for img in &images {
        store = store.restore_crash_image(img).unwrap();
        assert_mixed(
            &mut store,
            &old,
            &new,
            5,
            &format!("fixup/recycle cut at write {}", img.write_index()),
        );
    }
}
