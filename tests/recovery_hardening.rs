//! Targeted recovery-hardening coverage: WAL torn-tail replay, SSTable
//! checksum failures surfacing as `Corruption` (never a panic), file
//! quarantine on reopen, and transparent retry of transient read errors
//! — each exercised on both the set-aware store and the LevelDB baseline.

use sealdb::{Store, StoreConfig, StoreKind};
use workloads::RecordGenerator;

const KINDS: [StoreKind; 2] = [StoreKind::SealDb, StoreKind::LevelDb];

fn build(kind: StoreKind, sstable: u64, seed: u64) -> Store {
    let mut cfg = StoreConfig::new(kind, sstable, 512 << 20);
    cfg.seed = seed;
    cfg.build().unwrap()
}

fn fault_stats(store: &Store) -> smr_sim::FaultStats {
    store.db.ctx().lock().fs.disk().stats().faults
}

fn drop_caches(store: &Store) {
    let mut guard = store.db.ctx().lock();
    guard.block_cache.clear();
    guard.table_cache.clear();
}

/// A WAL chunk torn mid-transfer leaves a tail whose record CRCs fail;
/// replay must skip-and-report (LevelDB semantics), keep every record
/// before the tear, and leave the store writable.
#[test]
fn wal_torn_tail_is_skipped_and_reported() {
    for kind in KINDS {
        // Large sstable: the memtable (256 KiB) outlasts the WAL buffer
        // (64 KiB), so the first disk write of the churn phase is
        // deterministically a WAL chunk append.
        let mut store = build(kind, 256 << 10, 0x7A11);
        let gen = RecordGenerator::new(16, 128, 3);
        for i in 0..500u64 {
            store.put(&gen.key(i), &gen.value(i)).unwrap();
        }
        store.flush().unwrap();

        store
            .db
            .ctx()
            .lock()
            .fs
            .disk_mut()
            .faults_mut()
            .tear_write_after(0);
        let mut failed = false;
        for i in 500..5000u64 {
            if store.put(&gen.key(i), &gen.value(i)).is_err() {
                failed = true;
                break;
            }
        }
        assert!(failed, "{kind:?}: the torn WAL append must surface");
        assert_eq!(fault_stats(&store).torn_writes, 1);

        store
            .db
            .ctx()
            .lock()
            .fs
            .disk_mut()
            .faults_mut()
            .disarm_torn_writes();
        let mut store = store.reopen().unwrap();
        let rep = store.db.recovery_report().clone();
        assert!(
            rep.wal_records_skipped > 0 || rep.wal_bytes_dropped > 0,
            "{kind:?}: torn tail must be reported, got {rep:?}"
        );
        assert!(rep.any_damage(), "{kind:?}: report must flag damage");
        assert!(
            fault_stats(&store).checksum_failures > 0,
            "{kind:?}: the torn tail must be caught by a record CRC"
        );
        // Durable prefix intact; recovered churn keys byte-exact.
        for i in (0..500u64).step_by(13) {
            assert_eq!(
                store.get(&gen.key(i)).unwrap(),
                Some(gen.value(i)),
                "{kind:?}: durable key {i} lost"
            );
        }
        for i in 500..5000u64 {
            if let Some(v) = store.get(&gen.key(i)).unwrap() {
                assert_eq!(v, gen.value(i), "{kind:?}: corrupted key {i}");
            }
        }
        store.put(b"again", b"writable").unwrap();
        assert_eq!(store.get(b"again").unwrap(), Some(b"writable".to_vec()));
    }
}

/// Bit-flips in an SSTable extent must surface as `Error::Corruption`
/// with file/offset context — never a panic, never silent garbage — and
/// count as checksum failures in the I/O statistics.
#[test]
fn sstable_checksum_failure_surfaces_corruption() {
    for kind in KINDS {
        let mut store = build(kind, 16 << 10, 0xBADC);
        let gen = RecordGenerator::new(16, 128, 5);
        for i in 0..3000u64 {
            store.put(&gen.key(i), &gen.value(i)).unwrap();
        }
        store.flush().unwrap();

        // Corrupt the first (lowest-id) table file on disk.
        let (victim, ext) = {
            let guard = store.db.ctx().lock();
            guard.fs.file_extents()[0]
        };
        store
            .db
            .ctx()
            .lock()
            .fs
            .disk_mut()
            .faults_mut()
            .corrupt_extent(ext);
        drop_caches(&store);

        let mut corrupt_errors = 0u64;
        for i in (0..3000u64).step_by(7) {
            match store.get(&gen.key(i)) {
                Ok(Some(v)) => assert_eq!(v, gen.value(i), "{kind:?}: silent corruption, key {i}"),
                Ok(None) => {}
                Err(e) => {
                    let msg = e.to_string();
                    assert!(
                        msg.contains("corruption") && msg.contains(&format!("file {victim}")),
                        "{kind:?}: error must carry file context, got: {msg}"
                    );
                    corrupt_errors += 1;
                }
            }
        }
        assert!(
            corrupt_errors > 0,
            "{kind:?}: reads of the corrupted table must fail"
        );
        assert!(
            fault_stats(&store).checksum_failures > 0,
            "{kind:?}: checksum failures must be counted"
        );

        // Reopen quarantines the invalid file instead of letting it
        // load-bear: the store comes back up and reads never error.
        let mut store = store.reopen().unwrap();
        assert!(
            store.db.recovery_report().files_quarantined >= 1,
            "{kind:?}: corrupt file must be quarantined on reopen"
        );
        store
            .db
            .ctx()
            .lock()
            .fs
            .disk_mut()
            .faults_mut()
            .clear_corruption();
        drop_caches(&store);
        for i in (0..3000u64).step_by(7) {
            if let Some(v) = store.get(&gen.key(i)).unwrap() {
                assert_eq!(v, gen.value(i), "{kind:?}: post-quarantine key {i}");
            }
        }
        store.put(b"healed", b"yes").unwrap();
        assert_eq!(store.get(b"healed").unwrap(), Some(b"yes".to_vec()));
    }
}

/// Transient read errors (recoverable latent sector errors) are retried
/// once by the file store and never reach the caller.
#[test]
fn transient_read_errors_are_retried_transparently() {
    for kind in KINDS {
        let mut store = build(kind, 16 << 10, 0x7E57);
        let gen = RecordGenerator::new(16, 128, 9);
        for i in 0..2000u64 {
            store.put(&gen.key(i), &gen.value(i)).unwrap();
        }
        store.flush().unwrap();
        drop_caches(&store);
        store
            .db
            .ctx()
            .lock()
            .fs
            .disk_mut()
            .faults_mut()
            .fail_reads_transiently(10);
        for i in (0..2000u64).step_by(3) {
            assert_eq!(
                store.get(&gen.key(i)).unwrap(),
                Some(gen.value(i)),
                "{kind:?}: transient fault leaked to the caller, key {i}"
            );
        }
        let stats = fault_stats(&store);
        assert!(
            stats.transient_read_errors > 0,
            "{kind:?}: injected transients must have fired"
        );
        assert_eq!(
            stats.read_retries, stats.transient_read_errors,
            "{kind:?}: every transient error must be retried exactly once"
        );
    }
}

/// A manifest whose tail was torn falls back to the last consistent
/// version; files placed by the uncommitted edit are reclaimed as
/// orphans rather than trusted.
#[test]
fn manifest_tail_corruption_falls_back_to_consistent_version() {
    for kind in KINDS {
        let mut store = build(kind, 16 << 10, 0x3AB1);
        let gen = RecordGenerator::new(16, 128, 13);
        for i in 0..2500u64 {
            store.put(&gen.key(i), &gen.value(i)).unwrap();
        }
        store.flush().unwrap();

        // Tear a manifest append: keep loading with the bomb armed until
        // a flush's manifest commit dies. Flush every round so manifest
        // writes are frequent.
        store
            .db
            .ctx()
            .lock()
            .fs
            .disk_mut()
            .faults_mut()
            .tear_write_after(2);
        let mut i = 2500u64;
        loop {
            if store.put(&gen.key(i), &gen.value(i)).is_err() {
                break;
            }
            i += 1;
            if i.is_multiple_of(300) && store.flush().is_err() {
                break;
            }
            assert!(i < 50_000, "{kind:?}: fault never fired");
        }
        store
            .db
            .ctx()
            .lock()
            .fs
            .disk_mut()
            .faults_mut()
            .disarm_torn_writes();
        let mut store = store.reopen().unwrap();

        // Whatever the tear hit, the durable prefix must be complete and
        // no value may be garbage.
        for j in (0..2500u64).step_by(83) {
            assert_eq!(
                store.get(&gen.key(j)).unwrap(),
                Some(gen.value(j)),
                "{kind:?}: durable key {j} lost"
            );
        }
        for j in 2500..i {
            if let Some(v) = store.get(&gen.key(j)).unwrap() {
                assert_eq!(v, gen.value(j), "{kind:?}: corrupted key {j}");
            }
        }
        store.put(b"onward", b"ok").unwrap();
        assert_eq!(store.get(b"onward").unwrap(), Some(b"ok".to_vec()));
    }
}
