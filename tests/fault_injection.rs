//! Fault-injection tests: the disk starts refusing writes mid-run (a
//! crash or dying drive); the store must surface the error and recover
//! to a consistent state containing everything previously made durable.

use sealdb::{StoreConfig, StoreKind};
use workloads::RecordGenerator;

fn arm_failure(store: &mut sealdb::Store, after_writes: u64) {
    store
        .db
        .ctx()
        .lock()
        .fs
        .disk_mut()
        .fail_writes_after(Some(after_writes));
}

fn disarm(store: &mut sealdb::Store) {
    store.db.ctx().lock().fs.disk_mut().fail_writes_after(None);
}

#[test]
fn crash_mid_load_recovers_consistently() {
    for kind in [StoreKind::SealDb, StoreKind::LevelDb] {
        let mut cfg = StoreConfig::new(kind, 16 << 10, 512 << 20);
        cfg.seed = 77;
        let mut store = cfg.build().unwrap();
        let gen = RecordGenerator::new(16, 256, 3);

        // Phase 1: durable prefix.
        for i in 0..4000u64 {
            store.put(&gen.key(i), &gen.value(i)).unwrap();
        }
        store.flush().unwrap();

        // Phase 2: writes with a bomb armed. Eventually a put fails.
        arm_failure(&mut store, 500);
        let mut failed_at = None;
        for i in 4000..20_000u64 {
            if store.put(&gen.key(i), &gen.value(i)).is_err() {
                failed_at = Some(i);
                break;
            }
        }
        let failed_at = failed_at.expect("injected failure must trigger");

        // "Reboot": clear the fault and recover.
        disarm(&mut store);
        let mut store = store.reopen().unwrap();

        // The durable prefix is fully intact.
        for i in (0..4000u64).step_by(173) {
            assert_eq!(
                store.get(&gen.key(i)).unwrap(),
                Some(gen.value(i)),
                "{}: durable key {i} lost",
                store.name()
            );
        }
        // Recovered keys from phase 2 (if any) must carry correct values —
        // never garbage.
        for i in 4000..failed_at {
            if let Some(v) = store.get(&gen.key(i)).unwrap() {
                assert_eq!(v, gen.value(i), "{}: corrupted key {i}", store.name());
            }
        }
        // And the store accepts writes again.
        store.put(b"post-crash", b"alive").unwrap();
        assert_eq!(store.get(b"post-crash").unwrap(), Some(b"alive".to_vec()));
    }
}

#[test]
fn repeated_crashes_never_corrupt() {
    let mut cfg = StoreConfig::new(StoreKind::SealDb, 16 << 10, 512 << 20);
    cfg.seed = 99;
    let mut store = cfg.build().unwrap();
    let gen = RecordGenerator::new(16, 128, 5);
    let mut highest_flushed;
    let mut next = 0u64;
    for round in 0..5 {
        // Write a chunk and make it durable.
        for i in next..next + 1500 {
            store.put(&gen.key(i), &gen.value(i)).unwrap();
        }
        next += 1500;
        store.flush().unwrap();
        highest_flushed = next;
        // Keep writing until an injected failure hits.
        arm_failure(&mut store, 200 + round * 97);
        for i in next..next + 5000 {
            if store.put(&gen.key(i), &gen.value(i)).is_err() {
                break;
            }
        }
        disarm(&mut store);
        store = store.reopen().unwrap();
        // Everything flushed so far survives every crash.
        for i in (0..highest_flushed).step_by(211) {
            assert_eq!(
                store.get(&gen.key(i)).unwrap(),
                Some(gen.value(i)),
                "round {round}: key {i}"
            );
        }
    }
}

#[test]
fn compact_range_pushes_data_down_and_preserves_it() {
    let mut store = StoreConfig::new(StoreKind::SealDb, 16 << 10, 512 << 20)
        .build()
        .unwrap();
    let gen = RecordGenerator::new(16, 256, 3);
    let n = 8000u64;
    workloads::fill_random(&mut store, &gen, n, 31).unwrap();
    let before = store.db.current_version();
    let shallow_before: usize = (0..2).map(|l| before.level_file_count(l)).sum();
    assert!(shallow_before > 0, "expect files in shallow levels");
    store.db.compact_range(b"", &gen.key(n)).unwrap();
    let after = store.db.current_version();
    let shallow_after: usize = (0..2).map(|l| after.level_file_count(l)).sum();
    assert!(
        shallow_after < shallow_before || shallow_after == 0,
        "compact_range must drain shallow levels ({shallow_before} -> {shallow_after})"
    );
    after.check_invariants().unwrap();
    for i in (0..n).step_by(257) {
        assert_eq!(store.get(&gen.key(i)).unwrap(), Some(gen.value(i)));
    }
}
