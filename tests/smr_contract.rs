//! End-to-end SMR-contract tests: the raw HM-SMR disk faults on any
//! shingle violation, so a full SEALDB lifecycle completing without an
//! error *is* the proof that dynamic band management never overlaps
//! valid data — the paper's central device-level claim.

use sealdb::{StoreConfig, StoreKind};
use smr_sim::Layout;
use workloads::{fill_random, RecordGenerator};

#[test]
fn sealdb_never_violates_shingle_contract_under_churn() {
    let mut store = StoreConfig::new(StoreKind::SealDb, 16 << 10, 512 << 20)
        .build()
        .unwrap();
    let gen = RecordGenerator::new(16, 256, 3);
    // Load, overwrite half the keyspace twice, and delete stripes:
    // maximal churn through compactions, set fading and hole reuse.
    let n = 20_000u64;
    fill_random(&mut store, &gen, n, 11).unwrap();
    for round in 0..2u64 {
        for i in (0..n).step_by(2) {
            store.put(&gen.key(i), &gen.value(i + round)).unwrap();
        }
        for i in (0..n).step_by(7) {
            store.delete(&gen.key(i)).unwrap();
        }
    }
    store.flush().unwrap();
    // Every surviving key still reads correctly.
    for i in 0..n {
        let got = store.get(&gen.key(i)).unwrap();
        if i % 7 == 0 {
            assert_eq!(got, None, "key {i} should be deleted");
        } else if i % 2 == 0 {
            assert_eq!(got, Some(gen.value(i + 1)), "key {i} overwritten twice");
        } else {
            assert_eq!(got, Some(gen.value(i)), "key {i} untouched");
        }
    }
    // AWA is identically 1 on the raw layout: zero auxiliary write
    // amplification, the paper's Fig. 12(a) claim for SEALDB.
    let snap = store.snapshot();
    assert!(
        (snap.io.awa() - 1.0).abs() < 1e-9,
        "AWA = {}",
        snap.io.awa()
    );
}

#[test]
fn naive_placement_on_raw_smr_faults_immediately() {
    // Negative control: LevelDB's scattered per-file placement is NOT
    // safe on a raw shingled drive — the simulator catches the overlap
    // instead of corrupting. (This is why LevelDB needs fixed bands with
    // RMW, and why SEALDB needs dynamic band management.)
    // A small disk keeps files dense enough that hole reuse lands next
    // to live data.
    let mut cfg = StoreConfig::new(StoreKind::LevelDb, 16 << 10, 64 << 20);
    cfg.layout_override = Some(Layout::RawHmSmr {
        guard_bytes: 16 << 10,
    });
    let mut store = cfg.build().unwrap();
    let gen = RecordGenerator::new(16, 1024, 3);
    let mut failed = false;
    for i in 0..20_000u64 {
        let j = workloads::permute(i, 20_000, 5);
        if store.put(&gen.key(j), &gen.value(j)).is_err() {
            failed = true;
            break;
        }
    }
    assert!(
        failed,
        "ext4-style placement must violate the shingle contract on raw SMR"
    );
}

#[test]
fn crash_recovery_preserves_acknowledged_state() {
    let cfg = StoreConfig::new(StoreKind::SealDb, 32 << 10, 512 << 20);
    let mut store = cfg.build().unwrap();
    // Synced WAL for strict durability in this test.
    // (Default stores buffer 64 KiB like sync=false LevelDB.)
    let gen = RecordGenerator::new(16, 256, 3);
    let n = 5_000u64;
    fill_random(&mut store, &gen, n, 13).unwrap();
    // flush() inside fill_random makes everything durable in tables.
    let mut store = store.reopen().unwrap();
    for i in (0..n).step_by(97) {
        assert_eq!(
            store.get(&gen.key(i)).unwrap(),
            Some(gen.value(i)),
            "key {i} lost across reopen"
        );
    }
    // Write more, flush, crash again: still consistent.
    for i in n..n + 500 {
        store.put(&gen.key(i), &gen.value(i)).unwrap();
    }
    store.flush().unwrap();
    let mut store = store.reopen().unwrap();
    assert_eq!(
        store.get(&gen.key(n + 499)).unwrap(),
        Some(gen.value(n + 499))
    );
}

#[test]
fn deterministic_replay_bit_for_bit() {
    // Two identical runs produce identical clocks, amplification and
    // compaction logs — the property every figure regeneration relies on.
    let run = || {
        let mut store = StoreConfig::new(StoreKind::SealDb, 32 << 10, 512 << 20)
            .build()
            .unwrap();
        let gen = RecordGenerator::new(16, 256, 3);
        fill_random(&mut store, &gen, 8_000, 17).unwrap();
        let snap = store.snapshot();
        (
            snap.clock_ns,
            snap.io.mwa().to_bits(),
            snap.compactions.len(),
            snap.high_water,
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn gc_after_churn_keeps_store_correct() {
    let mut store = StoreConfig::new(StoreKind::SealDb, 32 << 10, 512 << 20)
        .build()
        .unwrap();
    let gen = RecordGenerator::new(16, 256, 3);
    let n = 15_000u64;
    fill_random(&mut store, &gen, n, 19).unwrap();
    // Churn to open fragments.
    for i in (0..n).step_by(3) {
        store.put(&gen.key(i), &gen.value(i + 1)).unwrap();
    }
    store.flush().unwrap();
    let report = store
        .collect_garbage(&lsm_core::GcConfig {
            fragment_threshold: 0, // derive from the average set size
            target_fragment_ratio: 0.01,
            max_moves: 128,
        })
        .unwrap();
    assert!(
        report.fragments_after <= report.fragments_before,
        "GC must not create fragments"
    );
    // Full correctness sweep after relocation.
    for i in (0..n).step_by(61) {
        let expect = if i % 3 == 0 {
            gen.value(i + 1)
        } else {
            gen.value(i)
        };
        assert_eq!(store.get(&gen.key(i)).unwrap(), Some(expect), "key {i}");
    }
    // Reads and scans still work through relocated extents.
    let rows = store.scan(&gen.key(100), 50).unwrap();
    assert_eq!(rows.len(), 50);
    // And the shingle contract still holds.
    let snap = store.snapshot();
    assert!((snap.io.awa() - 1.0).abs() < 1e-9);
}

#[test]
fn leveldb_on_ha_smr_is_bimodal() {
    // The paper's §II-C claim: media-cache drives stall on cleaning.
    let mut cfg = StoreConfig::new(StoreKind::LevelDb, 32 << 10, 256 << 20);
    cfg.layout_override = Some(Layout::HaSmr {
        band_size: 320 << 10,
        media_cache_bytes: 4 << 20,
    });
    let mut store = cfg.build().unwrap();
    let gen = RecordGenerator::new(16, 512, 3);
    let n = 30_000u64;
    let mut max_latency = 0u64;
    let mut sum = 0u64;
    for i in 0..n {
        let j = workloads::permute(i, n, 5);
        let t0 = store.clock_ns();
        store.put(&gen.key(j), &gen.value(j)).unwrap();
        let dt = store.clock_ns() - t0;
        max_latency = max_latency.max(dt);
        sum += dt;
    }
    let mean = sum / n;
    assert!(
        max_latency > mean * 100,
        "expected bimodal stalls: mean {mean} ns, max {max_latency} ns"
    );
    let cleanings = store.db.ctx().lock().fs.disk().cleaning_passes();
    assert!(cleanings > 0, "media cache must have cleaned at least once");
    // Data still correct through cache + cleaning.
    for i in (0..n).step_by(997) {
        assert_eq!(store.get(&gen.key(i)).unwrap(), Some(gen.value(i)));
    }
}

#[test]
fn snapshots_stay_consistent_across_all_stores() {
    for kind in StoreKind::ALL {
        let mut store = StoreConfig::new(kind, 16 << 10, 512 << 20).build().unwrap();
        let gen = RecordGenerator::new(16, 256, 3);
        let n = 3000u64;
        fill_random(&mut store, &gen, n, 23).unwrap();
        let snap = store.pin();
        // Overwrite everything after pinning.
        for i in 0..n {
            store.put(&gen.key(i), b"overwritten").unwrap();
        }
        store.flush().unwrap();
        for i in (0..n).step_by(127) {
            assert_eq!(
                store.get_at(&gen.key(i), &snap).unwrap(),
                Some(gen.value(i)),
                "{}: snapshot read {i}",
                store.name()
            );
            assert_eq!(
                store.get(&gen.key(i)).unwrap(),
                Some(b"overwritten".to_vec()),
                "{}: live read {i}",
                store.name()
            );
        }
        store.unpin(snap);
    }
}
