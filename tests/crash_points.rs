//! Crash-point sweep: deterministic torn-write and power-cut injection
//! across many seeded crash points, for both the set-aware store and the
//! LevelDB baseline. Every reopen must recover the durable prefix with
//! zero corrupted values, regardless of where the fault landed (WAL
//! append, SSTable placement, manifest commit, compaction output).

use sealdb::{Store, StoreConfig, StoreKind};
use std::collections::HashMap;
use workloads::RecordGenerator;

const KINDS: [StoreKind; 2] = [StoreKind::SealDb, StoreKind::LevelDb];

fn build(kind: StoreKind, seed: u64) -> Store {
    let mut cfg = StoreConfig::new(kind, 16 << 10, 512 << 20);
    cfg.seed = seed;
    cfg.build().unwrap()
}

fn fault_stats(store: &Store) -> smr_sim::FaultStats {
    store.db.ctx().lock().fs.disk().stats().faults
}

/// Torn-write sweep: arm a torn write `n` successful disk writes into a
/// churn phase, for a spread of `n` values chosen to land the tear on
/// every kind of write the engine issues (WAL chunks, flush tables,
/// compaction outputs, manifest records). 15 points x 2 stores = 30
/// seeded crash points.
#[test]
fn torn_write_sweep_recovers_durable_prefix() {
    const PREFIX: u64 = 2000;
    const POINTS: [u64; 15] = [0, 1, 2, 3, 5, 8, 13, 21, 34, 55, 89, 144, 233, 377, 610];
    for kind in KINDS {
        for (pt, &tear_after) in POINTS.iter().enumerate() {
            let mut store = build(kind, 0xC4A5 + pt as u64);
            let gen = RecordGenerator::new(16, 128, 3);

            // Durable prefix: written, flushed, manifest-committed.
            for i in 0..PREFIX {
                store.put(&gen.key(i), &gen.value(i)).unwrap();
            }
            store.flush().unwrap();

            // Churn with the tear armed until the device dies mid-write.
            store
                .db
                .ctx()
                .lock()
                .fs
                .disk_mut()
                .faults_mut()
                .tear_write_after(tear_after);
            let mut last_attempted = PREFIX;
            for i in PREFIX..PREFIX + 40_000 {
                last_attempted = i;
                if store.put(&gen.key(i), &gen.value(i)).is_err() {
                    break;
                }
            }
            assert_eq!(
                fault_stats(&store).torn_writes,
                1,
                "{} point {pt}: tear after {tear_after} writes must fire exactly once",
                store.name()
            );

            // Power restored; reboot.
            store
                .db
                .ctx()
                .lock()
                .fs
                .disk_mut()
                .faults_mut()
                .disarm_torn_writes();
            let mut store = store.reopen().unwrap();

            // The durable prefix survives in full, byte-exact.
            for i in (0..PREFIX).step_by(89) {
                assert_eq!(
                    store.get(&gen.key(i)).unwrap(),
                    Some(gen.value(i)),
                    "{} point {pt} (tear after {tear_after}): durable key {i} lost",
                    store.name()
                );
            }
            // Churn-phase keys may or may not have survived, but a
            // surviving key must carry its exact value — never garbage
            // from the torn extent.
            for i in PREFIX..=last_attempted {
                if let Some(v) = store.get(&gen.key(i)).unwrap() {
                    assert_eq!(
                        v,
                        gen.value(i),
                        "{} point {pt}: corrupted value for key {i}",
                        store.name()
                    );
                }
            }
            // The store takes writes again after recovery.
            store.put(b"post-crash", b"alive").unwrap();
            assert_eq!(store.get(b"post-crash").unwrap(), Some(b"alive".to_vec()));
        }
    }
}

/// Power-cut sweep: capture a copy-on-write crash image at every 20th
/// disk write during a flush-punctuated load, then "cut power" at a
/// sample of those boundaries and reopen. Each restore must bring back
/// every key flushed before the image's write index, with zero corrupted
/// values anywhere. >= 13 images x 2 stores = >= 26 crash points.
#[test]
fn power_cut_snapshot_sweep_recovers_every_boundary() {
    const ROUND: u64 = 700;
    const ROUNDS: u64 = 6;
    const MIN_IMAGES: usize = 13;
    for kind in KINDS {
        let mut store = build(kind, 0x9E37);
        let gen = RecordGenerator::new(16, 128, 7);
        let expected: HashMap<Vec<u8>, Vec<u8>> = (0..ROUNDS * ROUND)
            .map(|i| (gen.key(i), gen.value(i)))
            .collect();
        store
            .db
            .ctx()
            .lock()
            .fs
            .disk_mut()
            .faults_mut()
            .snapshot_every(5);

        // Flush-punctuated load; record each durability boundary as
        // (disk write index, keys durable by then).
        let mut boundaries: Vec<(u64, u64)> = Vec::new();
        for r in 0..ROUNDS {
            for i in r * ROUND..(r + 1) * ROUND {
                store.put(&gen.key(i), &gen.value(i)).unwrap();
            }
            store.flush().unwrap();
            let widx = store.db.ctx().lock().fs.disk().writes_issued();
            boundaries.push((widx, (r + 1) * ROUND));
        }
        store
            .db
            .ctx()
            .lock()
            .fs
            .disk_mut()
            .faults_mut()
            .disable_snapshots();
        let images = {
            let mut guard = store.db.ctx().lock();
            guard.fs.take_crash_images()
        };
        assert!(
            images.len() >= MIN_IMAGES,
            "{}: expected a rich image set, got {}",
            store.name(),
            images.len()
        );

        let stride = (images.len() / MIN_IMAGES).max(1);
        let mut tested = 0usize;
        for img in images.iter().step_by(stride) {
            store = store.restore_crash_image(img).unwrap();
            tested += 1;
            let durable = boundaries
                .iter()
                .filter(|&&(w, _)| w <= img.write_index())
                .map(|&(_, n)| n)
                .max()
                .unwrap_or(0);

            // Everything flushed before the cut survives, byte-exact.
            for i in (0..durable).step_by(61) {
                assert_eq!(
                    store.get(&gen.key(i)).unwrap(),
                    Some(gen.value(i)),
                    "{} cut at write {}: durable key {i} lost",
                    store.name(),
                    img.write_index()
                );
            }
            // No key anywhere reads back corrupted.
            for i in (0..ROUNDS * ROUND).step_by(101) {
                if let Some(v) = store.get(&gen.key(i)).unwrap() {
                    assert_eq!(
                        v,
                        gen.value(i),
                        "{} cut at write {}: corrupted key {i}",
                        store.name(),
                        img.write_index()
                    );
                }
            }
            // Scans stay consistent too.
            for (k, v) in store.scan(&gen.key(0), 64).unwrap() {
                if k.as_slice() == b"post-cut" {
                    continue;
                }
                assert_eq!(
                    expected.get(&k),
                    Some(&v),
                    "{} cut at write {}: scan surfaced a corrupt pair",
                    store.name(),
                    img.write_index()
                );
            }
            // And the rebooted store accepts writes.
            store.put(b"post-cut", b"alive").unwrap();
            assert_eq!(store.get(b"post-cut").unwrap(), Some(b"alive".to_vec()));
        }
        assert!(
            tested >= MIN_IMAGES,
            "{}: swept only {tested} power-cut points",
            store.name()
        );
    }
}

/// Torn writes and power cuts combined: tear a write, reboot, keep
/// loading, and power-cut from an image captured *after* the first
/// recovery. Recovery must compose.
#[test]
fn torn_write_then_power_cut_compose() {
    let mut store = build(StoreKind::SealDb, 0xDEAD);
    let gen = RecordGenerator::new(16, 128, 11);
    for i in 0..1500u64 {
        store.put(&gen.key(i), &gen.value(i)).unwrap();
    }
    store.flush().unwrap();

    // First fault: torn write mid-churn.
    store
        .db
        .ctx()
        .lock()
        .fs
        .disk_mut()
        .faults_mut()
        .tear_write_after(40);
    for i in 1500..8000u64 {
        if store.put(&gen.key(i), &gen.value(i)).is_err() {
            break;
        }
    }
    store
        .db
        .ctx()
        .lock()
        .fs
        .disk_mut()
        .faults_mut()
        .disarm_torn_writes();
    let mut store = store.reopen().unwrap();

    // Second phase with auto-snapshots on.
    store
        .db
        .ctx()
        .lock()
        .fs
        .disk_mut()
        .faults_mut()
        .snapshot_every(15);
    for i in 8000..9500u64 {
        store.put(&gen.key(i), &gen.value(i)).unwrap();
    }
    store.flush().unwrap();
    let widx = store.db.ctx().lock().fs.disk().writes_issued();
    let images = {
        let mut guard = store.db.ctx().lock();
        guard.fs.disk_mut().faults_mut().disable_snapshots();
        guard.fs.take_crash_images()
    };
    assert!(!images.is_empty());

    // Cut power at the last image at or before the final flush boundary.
    let img = images
        .iter()
        .rev()
        .find(|img| img.write_index() <= widx)
        .expect("an image precedes the boundary");
    let mut store = store.restore_crash_image(img).unwrap();
    for i in (0..1500u64).step_by(97) {
        assert_eq!(
            store.get(&gen.key(i)).unwrap(),
            Some(gen.value(i)),
            "phase-1 durable key {i} lost after composed faults"
        );
    }
    for i in (1500..9500u64).step_by(113) {
        if let Some(v) = store.get(&gen.key(i)).unwrap() {
            assert_eq!(v, gen.value(i), "corrupted key {i} after composed faults");
        }
    }
    store.put(b"end", b"ok").unwrap();
    assert_eq!(store.get(b"end").unwrap(), Some(b"ok".to_vec()));
}
