//! Pinned chaos repros and schedule-generator coverage regressions.
//!
//! The first test pins the **minimized repro** the chaos shrinker
//! produced for the PR 8 retire-before-sync regression (re-injected on
//! demand via `ChaosConfig::buggy_gc`): the exact event core the
//! delta-debugging pass converged on, kept here verbatim so the
//! ordering bug can never quietly come back. The remaining tests gate
//! the schedule generator itself — CI's composed-fault smoke is only as
//! strong as the fault classes the generator keeps emitting.

use seal_chaos::{generate, schedule_fails, ChaosConfig, ChaosEvent};
use std::collections::BTreeSet;

fn buggy_cfg() -> ChaosConfig {
    ChaosConfig {
        groups: 1,
        replicas: 1,
        buggy_gc: true,
        ..ChaosConfig::default()
    }
}

/// The shrinker's minimized output for the re-injected PR 8 bug: three
/// write bursts arm the value log (hot keys need two puts to divert,
/// and sealed segments need dead records worth reclaiming), then one
/// GC drain through the barrier-free entry point trips the oracle. The
/// same schedule through the *correct* GC path must pass — the failure
/// is the ordering bug, not the schedule.
#[test]
fn minimized_retire_before_sync_repro_is_pinned() {
    use ChaosEvent::*;
    let core = vec![
        WriteBurst { base: 0, count: 60 },
        WriteBurst { base: 0, count: 60 },
        WriteBurst {
            base: 10,
            count: 50,
        },
        GcDrain { group: 0 },
    ];
    assert!(
        schedule_fails(&buggy_cfg(), 7, &core),
        "the pinned minimized repro no longer reproduces the retire-before-sync bug"
    );
    let fixed = ChaosConfig {
        buggy_gc: false,
        ..buggy_cfg()
    };
    assert!(
        !schedule_fails(&fixed, 7, &core),
        "the correct GC path must survive the pinned repro schedule"
    );
}

/// Generated schedules keep spanning the fault classes the CI smoke
/// gates on: at least 4 device classes and all 3 cluster classes
/// across a small fixed seed range. A weight change that silently
/// drops a class from the generator's reach fails here, not in a
/// production incident.
#[test]
fn generator_keeps_covering_the_gated_fault_classes() {
    let cfg = ChaosConfig::default();
    let mut device: BTreeSet<&'static str> = BTreeSet::new();
    let mut cluster: BTreeSet<&'static str> = BTreeSet::new();
    for seed in 0..8u64 {
        for ev in generate(seed, &cfg) {
            if let Some(c) = ev.device_class() {
                device.insert(c.name());
            }
            for c in ev.cluster_classes() {
                cluster.insert(c.name());
            }
        }
    }
    assert!(
        device.len() >= 4,
        "schedules from 8 seeds span only {device:?} device fault classes"
    );
    assert!(
        cluster.len() >= 3,
        "schedules from 8 seeds span only {cluster:?} cluster fault classes"
    );
}

/// Same seed, same config — same schedule. The repro snippets the
/// shrinker emits are only replayable because generation is pure.
#[test]
fn generation_is_deterministic_per_seed() {
    let cfg = ChaosConfig::default();
    assert_eq!(generate(42, &cfg), generate(42, &cfg));
    assert_ne!(generate(42, &cfg), generate(43, &cfg));
}
