//! Cross-crate determinism contract for replication: the `seal-bench`
//! replication sweep rides the simulated clock and a seeded network
//! only, so two runs with the same seed must serialize byte-identical
//! `BENCH_pr6.json` artifacts, a different seed must actually change
//! the measured cells, and a full failover episode — including one run
//! under an active partition schedule — must leave the promoted
//! primary with an identical state fingerprint across replays.

use bench::{replicate_run, BenchScale};
use seal_replica::{Cluster, ReplicaConfig};

/// A sweep small enough for a debug-mode double run: the disk must
/// still clear the 16 MiB log-zone floor.
fn small_scale() -> BenchScale {
    let mut s = BenchScale::tiny();
    s.load_bytes = 4 << 20;
    s.capacity_ratio = 12;
    s.ycsb_ops = 200;
    s
}

#[test]
fn same_seed_double_run_is_byte_identical() {
    let first = replicate_run::replicate_sweep(&small_scale()).expect("first sweep");
    let second = replicate_run::replicate_sweep(&small_scale()).expect("second sweep");
    assert_eq!(
        first, second,
        "same-seed replication sweeps must serialize byte-identically"
    );
    let problems = replicate_run::check_replicate_json(&first);
    assert!(problems.is_empty(), "artifact invalid: {problems:?}");
}

#[test]
fn seed_changes_the_measured_cells() {
    let base = replicate_run::replicate_sweep(&small_scale()).expect("base sweep");
    let mut reseeded = small_scale();
    reseeded.seed ^= 0xBAD5EED;
    let other = replicate_run::replicate_sweep(&reseeded).expect("reseeded sweep");
    assert!(replicate_run::check_replicate_json(&other).is_empty());
    assert_ne!(base, other, "a different seed must change the artifact");
}

/// One failover episode under an active partition schedule: replica 2
/// is cut off mid-stream and heals after the election, so the run
/// exercises partition-aware promotion, post-heal delivery, and rejoin
/// — and must still replay identically, down to the promoted primary's
/// state fingerprint.
fn partitioned_episode() -> (u64, u64, usize) {
    let scale = small_scale();
    let mut conf = ReplicaConfig::new(2, scale.sstable, scale.disk_capacity());
    conf.seed = scale.seed;
    let mut c = Cluster::new(conf).expect("cluster");
    let gen = scale.generator();
    for i in 0..10 {
        c.put(&gen.key(i), &gen.value(i))
            .expect("pre-partition write");
    }
    // Cut replica 2 off for a window that spans the kill and the
    // election, healing one simulated second later.
    let cut = c.now_ns();
    c.net_mut()
        .faults_mut()
        .partition(2, cut, cut + 1_000_000_000);
    for i in 10..25 {
        c.put(&gen.key(i), &gen.value(i))
            .expect("partitioned write");
    }
    let report = c.kill_primary().expect("failover");
    assert_eq!(
        report.promoted, 1,
        "the partitioned replica must not win the election"
    );
    for i in 25..40 {
        c.put(&gen.key(i), &gen.value(i))
            .expect("post-failover write");
    }
    c.rejoin(0).expect("rejoin");
    for i in 40..45 {
        c.put(&gen.key(i), &gen.value(i))
            .expect("post-rejoin write");
    }
    let audit = c.audit().expect("audit");
    assert_eq!(audit.acked_lost, 0, "quorum acks must survive the episode");
    let hash = c.state_hash().expect("state hash");
    (hash, report.rto_ns, report.promoted)
}

#[test]
fn partitioned_failover_replays_identically() {
    assert_eq!(
        partitioned_episode(),
        partitioned_episode(),
        "same-seed failover episodes must agree on promoted state and RTO"
    );
}
