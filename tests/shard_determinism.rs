//! Cluster-level determinism: the multi-shard router, serving loop, and
//! migration machinery must replay byte-identically from a (config,
//! seed) pair — the property `BENCH_pr7.json` regeneration stands on —
//! and a mid-run shard split must never lose an acknowledged key.

use bench::{shard_run, BenchScale};
use seal_shard::{serve, ClusterServeConfig, ShardCluster, ShardConfig};
use workloads::{ArrivalProcess, RecordGenerator, WorkloadSpec};

fn small_scale() -> BenchScale {
    let mut s = BenchScale::tiny();
    s.load_bytes = 4 << 20;
    s.capacity_ratio = 12;
    s.ycsb_ops = 100;
    s
}

fn serve_cfg(clients: usize, ops: u64, records: u64, seed: u64) -> ClusterServeConfig {
    ClusterServeConfig::new(
        WorkloadSpec::serve_mix(),
        ArrivalProcess::ClosedLoop { think_ns: 0 },
        clients,
        ops,
        records,
    )
    .with_seed(seed)
}

/// The full sweep artifact — every cell, the migration, all state
/// hashes — serializes byte-identically across same-seed reruns, and a
/// different seed produces a different artifact.
#[test]
fn shard_sweep_artifact_is_byte_identical_same_seed() {
    let scale = small_scale();
    let a = shard_run::shard_sweep(&scale).unwrap();
    let b = shard_run::shard_sweep(&scale).unwrap();
    assert_eq!(a, b, "same-seed shard artifacts must be byte-identical");
    assert!(
        shard_run::check_shard_json(&a).is_empty(),
        "{:?}",
        shard_run::check_shard_json(&a)
    );

    let mut reseeded = scale;
    reseeded.seed ^= 0xDEAD;
    let c = shard_run::shard_sweep(&reseeded).unwrap();
    assert_ne!(a, c, "a different seed must produce a different artifact");
}

/// A serve → split → serve → merge → serve sequence replays to
/// identical per-shard state hashes, identical cluster clocks, and an
/// audit that loses zero acknowledged keys at every step.
#[test]
fn mid_run_migration_replays_identically_and_loses_nothing() {
    let gen = RecordGenerator::new(16, 128, 21);
    const RECORDS: u64 = 1500;
    let run = || {
        let cfg = ShardConfig::new(3, 32 << 10, 1 << 30).with_seed(77);
        let mut c = ShardCluster::new(cfg).unwrap();
        c.load(&gen, RECORDS).unwrap();

        let r1 = serve(&mut c, &gen, &serve_cfg(6, 400, RECORDS, 31)).unwrap();
        let split = c.split_hottest().unwrap();
        assert!(split.moved_keys > 0);
        let audit1 = c.audit(&gen, r1.records_after).unwrap();
        assert_eq!(audit1.lost, 0, "split lost acked keys");

        let r2 = serve(&mut c, &gen, &serve_cfg(6, 400, r1.records_after, 32)).unwrap();
        let merge = c.merge_shard(0).unwrap();
        let audit2 = c.audit(&gen, r2.records_after).unwrap();
        assert_eq!(audit2.lost, 0, "merge lost acked keys");

        let r3 = serve(&mut c, &gen, &serve_cfg(6, 200, r2.records_after, 33)).unwrap();
        (
            r1.sim_ns,
            r2.sim_ns,
            r3.sim_ns,
            split,
            merge,
            c.state_hashes().unwrap(),
            c.now_ns(),
        )
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "migration mid-run must replay identically");
}

/// Saturation throughput rises with shard count at test scale — the
/// scale-out property the artifact checker gates at 1→2→4→8.
#[test]
fn saturation_scales_with_shard_count() {
    let gen = RecordGenerator::new(16, 128, 9);
    const RECORDS: u64 = 2000;
    let sat = |shards: usize| {
        let cfg = ShardConfig::new(shards, 32 << 10, 1 << 30).with_seed(5);
        let mut c = ShardCluster::new(cfg).unwrap();
        c.load(&gen, RECORDS).unwrap();
        serve(&mut c, &gen, &serve_cfg(8, 600, RECORDS, 13))
            .unwrap()
            .throughput_ops_per_sec
    };
    let one = sat(1);
    let four = sat(4);
    let eight = sat(8);
    assert!(four > one, "4 shards {four:.0} !> 1 shard {one:.0}");
    assert!(eight > four, "8 shards {eight:.0} !> 4 shards {four:.0}");
}
